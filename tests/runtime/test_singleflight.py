"""Unit tests of the keyed single-flight primitive."""

import asyncio

import pytest

from repro.runtime import SingleFlight


def run(coro):
    return asyncio.run(coro)


class TestClaim:
    def test_first_claim_leads_later_claims_join(self):
        async def scenario():
            flight = SingleFlight()
            f1, leader1 = flight.claim("k")
            f2, leader2 = flight.claim("k")
            assert leader1 is True and leader2 is False
            assert f1 is f2
            assert flight.leads == 1 and flight.joins == 1
            assert len(flight) == 1 and flight.in_flight("k")
            flight.resolve("k", 42)
            assert await f1 == 42 and await f2 == 42
            assert len(flight) == 0 and not flight.in_flight("k")

        run(scenario())

    def test_distinct_keys_fly_separately(self):
        async def scenario():
            flight = SingleFlight()
            fa, la = flight.claim("a")
            fb, lb = flight.claim("b")
            assert la and lb and fa is not fb
            flight.resolve("a", "A")
            flight.resolve("b", "B")
            assert (await fa, await fb) == ("A", "B")

        run(scenario())

    def test_key_is_reusable_after_resolution(self):
        async def scenario():
            flight = SingleFlight()
            f1, _ = flight.claim("k")
            flight.resolve("k", 1)
            f2, leader = flight.claim("k")
            assert leader is True and f2 is not f1
            flight.resolve("k", 2)
            assert await f1 == 1 and await f2 == 2
            assert flight.leads == 2

        run(scenario())


class TestSettlement:
    def test_reject_raises_in_every_claimant(self):
        async def scenario():
            flight = SingleFlight()
            f1, _ = flight.claim("k")
            f2, _ = flight.claim("k")
            flight.reject("k", ValueError("boom"))
            with pytest.raises(ValueError, match="boom"):
                await f1
            with pytest.raises(ValueError, match="boom"):
                await f2

        run(scenario())

    def test_settling_an_unknown_key_raises(self):
        async def scenario():
            flight = SingleFlight()
            with pytest.raises(KeyError, match="not in flight"):
                flight.resolve("ghost", 1)
            with pytest.raises(KeyError, match="not in flight"):
                flight.reject("ghost", RuntimeError())

        run(scenario())

    def test_resolve_after_waiter_cancelled_is_safe(self):
        async def scenario():
            flight = SingleFlight()
            future, _ = flight.claim("k")
            future.cancel()
            flight.resolve("k", 7)  # must not raise InvalidStateError
            assert future.cancelled()

        run(scenario())


class TestConcurrentWaiters:
    def test_many_waiters_one_computation(self):
        async def scenario():
            flight = SingleFlight()
            computations = 0

            async def fetch(key):
                nonlocal computations
                future, leader = flight.claim(key)
                if leader:
                    await asyncio.sleep(0.005)
                    computations += 1
                    flight.resolve(key, f"value-{key}")
                return await future

            results = await asyncio.gather(*(fetch("shared") for _ in range(16)))
            assert results == ["value-shared"] * 16
            assert computations == 1
            assert flight.joins == 15

        run(scenario())
