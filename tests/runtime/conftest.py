"""Runtime-test fixtures: keep the environment from leaking into the
deterministic executor/cache behaviour under test."""

import pytest


@pytest.fixture(autouse=True)
def _isolate_runtime_env(monkeypatch):
    """Ignore an operator's REPRO_JOBS/REPRO_CACHE_DIR during these tests."""
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
