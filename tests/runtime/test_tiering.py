"""Tests of the tiered cache: LRU bounds, promotion, write-behind."""

import pickle
import threading
import time

import pytest

from repro.runtime import ResultCache
from repro.runtime.tiering import (
    CacheStore,
    MemoryLRUStore,
    TieredStore,
    TierStats,
    make_tiered_store,
    value_bytes,
)
from repro.distributed.store import DirectoryStore


class RecordingStore(CacheStore):
    """In-memory CacheStore test double with scriptable failures."""

    def __init__(self, fail_puts=0, raise_on_get=False):
        super().__init__()
        self.data = {}
        self.put_calls = 0
        self.fail_puts = fail_puts
        self.raise_on_get = raise_on_get

    def _key(self, namespace, payload):
        return (namespace, tuple(sorted(payload.items())))

    def get(self, namespace, payload):
        if self.raise_on_get:
            self.tier.errors += 1
            raise OSError("backend down")
        value = self.data.get(self._key(namespace, payload))
        self.tier.record_get(value, 0.0)
        return value

    def put(self, namespace, payload, value):
        self.put_calls += 1
        if self.put_calls <= self.fail_puts:
            self.tier.errors += 1
            raise OSError("backend down")
        self.data[self._key(namespace, payload)] = value
        self.tier.record_put(value, 0.0)

    def describe(self):
        return "recording:test"


class TestTierStats:
    def test_get_accounting(self):
        stats = TierStats()
        stats.record_get(None, 0.25)
        stats.record_get({"v": 1}, 0.25)
        assert stats.hits == 1 and stats.misses == 1
        assert stats.bytes_read == value_bytes({"v": 1})
        assert stats.get_seconds == pytest.approx(0.5)

    def test_to_dict_rounds_latency(self):
        stats = TierStats()
        stats.get_seconds = 0.123456789
        out = stats.to_dict()
        assert out["get_seconds"] == 0.123457
        assert set(out) == {
            "hits", "misses", "puts", "bytes_read", "bytes_written",
            "errors", "retries", "evictions", "expirations",
            "get_seconds", "put_seconds",
        }

    def test_value_bytes_is_canonical(self):
        # Key order must not change the byte accounting.
        assert value_bytes({"a": 1, "b": 2}) == value_bytes({"b": 2, "a": 1})


class TestMemoryLRUStore:
    def test_round_trip_and_miss(self):
        store = MemoryLRUStore()
        assert store.get("ns", {"k": 1}) is None
        store.put("ns", {"k": 1}, [1.5, 2.5])
        assert store.get("ns", {"k": 1}) == [1.5, 2.5]
        assert store.tier.hits == 1 and store.tier.misses == 1

    def test_entry_bound_evicts_least_recently_used(self):
        store = MemoryLRUStore(max_entries=2)
        store.put("ns", {"k": 1}, "a")
        store.put("ns", {"k": 2}, "b")
        assert store.get("ns", {"k": 1}) == "a"  # 1 is now most recent
        store.put("ns", {"k": 3}, "c")           # evicts 2, not 1
        assert store.get("ns", {"k": 2}) is None
        assert store.get("ns", {"k": 1}) == "a"
        assert store.get("ns", {"k": 3}) == "c"
        assert store.tier.evictions == 1

    def test_byte_bound_evicts_until_it_holds(self):
        one = value_bytes("xxxx")
        store = MemoryLRUStore(max_entries=100, max_bytes=3 * one)
        for k in range(3):
            store.put("ns", {"k": k}, "xxxx")
        assert len(store) == 3 and store.total_bytes == 3 * one
        store.put("ns", {"k": 3}, "xxxx")  # one over budget: evict oldest
        assert len(store) == 3
        assert store.get("ns", {"k": 0}) is None
        assert store.tier.evictions == 1
        assert store.total_bytes == 3 * one

    def test_oversized_value_not_admitted(self):
        store = MemoryLRUStore(max_bytes=8)
        store.put("ns", {"k": 0}, "ok")
        store.put("ns", {"k": 1}, "x" * 64)  # larger than the whole tier
        assert store.get("ns", {"k": 1}) is None
        # ...and it did not evict what was already hot.
        assert store.get("ns", {"k": 0}) == "ok"

    def test_replacing_a_key_updates_bytes(self):
        store = MemoryLRUStore()
        store.put("ns", {"k": 1}, "aa")
        store.put("ns", {"k": 1}, "bbbb")
        assert store.total_bytes == value_bytes("bbbb")
        assert len(store) == 1

    def test_ttl_expires_at_exactly_ttl(self, monkeypatch):
        store = MemoryLRUStore(ttl=30.0)
        store.put("ns", {"k": 1}, "fresh")
        stored_at = store._entries[store._key("ns", {"k": 1})][2]
        monkeypatch.setattr(time, "monotonic", lambda: stored_at + 30.0)
        assert store.get("ns", {"k": 1}) is None
        assert store.tier.expirations == 1
        assert len(store) == 0  # expired entries are dropped eagerly

    def test_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            MemoryLRUStore(max_entries=0)
        with pytest.raises(ValueError, match="max_bytes"):
            MemoryLRUStore(max_bytes=0)
        with pytest.raises(ValueError, match="ttl"):
            MemoryLRUStore(ttl=-1.0)

    def test_describe(self):
        assert MemoryLRUStore(max_entries=5, max_bytes=100).describe() == (
            "memory:lru(entries<=5,bytes<=100)"
        )
        assert "ttl=30s" in MemoryLRUStore(ttl=30.0).describe()

    def test_pickles_as_empty_with_same_config(self):
        store = MemoryLRUStore(max_entries=7, max_bytes=99, ttl=5.0)
        store.put("ns", {"k": 1}, "hot")
        clone = pickle.loads(pickle.dumps(store))
        assert clone.max_entries == 7 and clone.max_bytes == 99
        assert clone.ttl == 5.0
        assert len(clone) == 0  # hot entries do not travel
        clone.put("ns", {"k": 2}, "works")
        assert clone.get("ns", {"k": 2}) == "works"


class TestTieredStoreReads:
    def test_read_through_promotes_into_faster_tiers(self):
        memory, local, remote = (
            MemoryLRUStore(), RecordingStore(), RecordingStore()
        )
        remote.put("ns", {"k": 1}, {"v": 42})
        store = TieredStore(memory=memory, local=local, remote=remote)
        assert store.get("ns", {"k": 1}) == {"v": 42}
        # Promoted: both faster tiers now hold the value.
        assert memory.get("ns", {"k": 1}) == {"v": 42}
        assert local.get("ns", {"k": 1}) == {"v": 42}
        # The next read stops at the memory tier.
        store.get("ns", {"k": 1})
        assert remote.tier.hits == 1

    def test_middle_tier_hit_promotes_upward_only(self):
        memory, local, remote = (
            MemoryLRUStore(), RecordingStore(), RecordingStore()
        )
        local.put("ns", {"k": 1}, "mid")
        store = TieredStore(memory=memory, local=local, remote=remote)
        assert store.get("ns", {"k": 1}) == "mid"
        assert memory.get("ns", {"k": 1}) == "mid"
        assert remote.data == {}  # promotion never writes downward

    def test_raising_tier_degrades_to_the_next(self):
        broken = RecordingStore(raise_on_get=True)
        remote = RecordingStore()
        remote.put("ns", {"k": 1}, "still there")
        store = TieredStore(local=broken, remote=remote)
        assert store.get("ns", {"k": 1}) == "still there"
        assert broken.tier.errors == 1

    def test_total_miss_returns_none(self):
        store = TieredStore(memory=MemoryLRUStore())
        assert store.get("ns", {"k": 1}) is None


class TestTieredStoreWrites:
    def test_put_lands_synchronously_on_local_tiers(self):
        memory, local = MemoryLRUStore(), RecordingStore()
        store = TieredStore(memory=memory, local=local)
        store.put("ns", {"k": 1}, "v")
        assert memory.get("ns", {"k": 1}) == "v"
        assert local.get("ns", {"k": 1}) == "v"
        store.close()

    def test_write_behind_reaches_remote_after_flush(self):
        remote = RecordingStore()
        with TieredStore(memory=MemoryLRUStore(), remote=remote) as store:
            store.put("ns", {"k": 1}, "v")
            assert store.flush(timeout=10.0)
            assert remote.get("ns", {"k": 1}) == "v"
            assert store.flushed == 1 and store.queued == 1

    def test_retry_with_backoff_then_success(self):
        remote = RecordingStore(fail_puts=2)
        store = TieredStore(
            remote=remote, flush_retries=3, flush_backoff=0.001,
            flush_backoff_cap=0.01,
        )
        store.put("ns", {"k": 1}, "v")
        assert store.flush(timeout=10.0)
        assert remote.get("ns", {"k": 1}) == "v"
        assert store.retried == 2 and store.flushed == 1
        assert store.dropped == 0
        store.close()

    def test_exhausted_retries_drop_and_count(self):
        remote = RecordingStore(fail_puts=10**6)
        store = TieredStore(
            local=RecordingStore(), remote=remote,
            flush_retries=2, flush_backoff=0.001, flush_backoff_cap=0.005,
        )
        store.put("ns", {"k": 1}, "v")
        assert store.flush(timeout=10.0)
        assert store.dropped == 1 and store.flushed == 0
        assert store.retried == 2
        # Fail-open: the local tier still answers.
        assert store.get("ns", {"k": 1}) == "v"
        store.close()

    def test_bounded_queue_drops_excess_puts(self):
        gate = threading.Event()

        class Stalling(RecordingStore):
            def put(self, namespace, payload, value):
                gate.wait(10.0)
                super().put(namespace, payload, value)

        store = TieredStore(remote=Stalling(), flush_queue=2)
        # First put occupies the flusher; two more fill the queue; the
        # rest must drop without blocking this thread.
        for k in range(6):
            store.put("ns", {"k": k}, "v")
        assert store.dropped >= 3
        gate.set()
        assert store.flush(timeout=10.0)
        assert store.queued + store.dropped == 6
        store.close()

    def test_raising_synchronous_tier_counts_not_raises(self):
        class Exploding(RecordingStore):
            def put(self, namespace, payload, value):
                raise RuntimeError("unexpected")

        exploding = Exploding()
        store = TieredStore(local=exploding)
        store.put("ns", {"k": 1}, "v")  # must not raise
        assert exploding.tier.errors == 1
        store.close()

    def test_close_is_idempotent_and_stops_the_flusher(self):
        remote = RecordingStore()
        store = TieredStore(remote=remote)
        store.put("ns", {"k": 1}, "v")
        store.close()
        store.close()
        assert remote.get("ns", {"k": 1}) == "v"

    def test_flush_timeout_returns_false(self):
        class Stuck(RecordingStore):
            def put(self, namespace, payload, value):
                time.sleep(30.0)

        store = TieredStore(remote=Stuck())
        store.put("ns", {"k": 1}, "v")
        assert store.flush(timeout=0.05) is False


class TestTieredStoreStats:
    def test_nested_payload_shape(self):
        store = TieredStore(
            memory=MemoryLRUStore(), local=RecordingStore(),
            remote=RecordingStore(),
        )
        store.put("ns", {"k": 1}, "v")
        store.flush(timeout=10.0)
        payload = store.stats_payload()
        assert payload["store"].startswith("tiered:[")
        assert set(payload["tiers"]) == {"memory", "local", "remote"}
        assert payload["tiers"]["memory"]["puts"] == 1
        wb = payload["write_behind"]
        assert wb["queued"] == wb["flushed"] == 1
        assert wb["queue_depth"] == 0
        store.close()

    def test_describe_chains_the_tiers(self):
        store = TieredStore(memory=MemoryLRUStore(), local=RecordingStore())
        assert store.describe() == (
            f"tiered:[{store.memory.describe()} -> recording:test]"
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one tier"):
            TieredStore()
        with pytest.raises(ValueError, match="flush_queue"):
            TieredStore(memory=MemoryLRUStore(), flush_queue=0)
        with pytest.raises(ValueError, match="flush_retries"):
            TieredStore(memory=MemoryLRUStore(), flush_retries=-1)
        with pytest.raises(ValueError, match="flush_backoff"):
            TieredStore(memory=MemoryLRUStore(), flush_backoff=0.0)
        with pytest.raises(ValueError, match="flush_backoff"):
            TieredStore(
                memory=MemoryLRUStore(), flush_backoff=1.0,
                flush_backoff_cap=0.5,
            )


class TestPickling:
    def test_tiered_store_travels_config_not_state(self, tmp_path):
        store = make_tiered_store(cache_dir=str(tmp_path / "c"))
        store.put("ns", {"k": 1}, "v")
        store.flush(timeout=10.0)
        clone = pickle.loads(pickle.dumps(store))
        # The directory tier is shared state, the memory tier is not.
        assert len(clone.memory) == 0
        assert clone.get("ns", {"k": 1}) == "v"
        clone.put("ns", {"k": 2}, "w")
        clone.close()
        assert store.get("ns", {"k": 2}) == "w"
        store.close()


class TestMakeTieredStore:
    def test_default_composition(self, tmp_path):
        store = make_tiered_store(cache_dir=str(tmp_path / "c"))
        assert isinstance(store.memory, MemoryLRUStore)
        assert isinstance(store.local, DirectoryStore)
        assert store.remote is None
        store.close()

    def test_lru_entries_zero_drops_the_memory_tier(self, tmp_path):
        store = make_tiered_store(cache_dir=str(tmp_path / "c"),
                                  lru_entries=0)
        assert store.memory is None
        store.close()

    def test_store_url_adds_the_remote_tier(self, tmp_path):
        from repro.distributed.objectstore import ObjectStore

        store = make_tiered_store(
            cache_dir=str(tmp_path / "c"),
            store_url="http://127.0.0.1:1/repro-cache",
        )
        assert isinstance(store.remote, ObjectStore)
        store.close(timeout=0.1)

    def test_ttl_reaches_both_local_tiers(self, tmp_path):
        store = make_tiered_store(cache_dir=str(tmp_path / "c"), ttl=60.0)
        assert store.memory.ttl == 60.0
        assert store.local.ttl == 60.0
        store.close()

    def test_shares_bytes_with_result_cache(self, tmp_path):
        """A tiered store over a directory a plain ResultCache wrote is
        warm from the start — one content address everywhere."""
        path = str(tmp_path / "shared")
        ResultCache(cache_dir=path).put("mcshard", {"k": 1}, [1.5])
        store = make_tiered_store(cache_dir=path)
        assert store.get("mcshard", {"k": 1}) == [1.5]
        store.close()
