"""Tests of the sharded Monte-Carlo layer.

The headline guarantee under test: for a fixed ``(n_samples,
block_samples, seed)`` population, the merged result is bit-identical
for every shard count, worker count and cache state — including the
single-shard in-process run that :meth:`MonteCarloAnalyzer.analyze`
performs.
"""

import pytest

from repro.runtime import ResultCache, ShardPlan
from repro.runtime.sharding import ShardedMonteCarlo
from repro.sram.montecarlo import MarginTally, MonteCarloAnalyzer

#: Shard counts from the acceptance criteria: serial, even split, ragged.
SHARD_COUNTS = (1, 4, 13)


@pytest.fixture(scope="module")
def analyzer(cell6):
    # 1600 samples in 128-sample blocks -> 13 blocks (12 full + 1 partial),
    # so shards=13 exercises one-block shards and the ragged tail.
    return MonteCarloAnalyzer(cell=cell6, n_samples=1600, seed=42, block_samples=128)


@pytest.fixture(scope="module")
def monolithic(analyzer):
    return analyzer.analyze(0.7)


class TestShardPlan:
    def test_block_structure(self):
        plan = ShardPlan.plan(1600, block_samples=128)
        assert plan.n_blocks == 13
        assert [plan.block_size(j) for j in range(13)] == [128] * 12 + [64]

    def test_shards_partition_all_blocks(self):
        plan = ShardPlan.plan(1600, block_samples=128, shards=4)
        shards = plan.shards()
        assert len(shards) == 4
        covered = [j for s in shards for j, _ in s.blocks]
        assert covered == list(range(plan.n_blocks))
        assert sum(s.n_samples for s in shards) == plan.n_samples

    def test_shard_count_clamped_to_blocks(self):
        plan = ShardPlan.plan(1600, block_samples=128, shards=50)
        assert plan.n_shards == 13

    def test_max_shard_samples_raises_shard_count(self):
        plan = ShardPlan.plan(1600, block_samples=128, max_shard_samples=256)
        assert plan.max_samples_per_shard() <= 256
        assert plan.n_shards == 7  # ceil(13 blocks / 2 blocks per shard)

    def test_max_shard_samples_below_block_clamps_to_one_block(self):
        plan = ShardPlan.plan(1600, block_samples=128, max_shard_samples=10)
        assert plan.n_shards == plan.n_blocks

    def test_block_seeds_are_layout_independent(self):
        few = ShardPlan.plan(1600, block_samples=128, shards=2)
        many = ShardPlan.plan(1600, block_samples=128, shards=13)
        for j in range(few.n_blocks):
            assert few.block_seed(7, j) == many.block_seed(7, j)

    def test_block_zero_is_the_base_stream(self):
        assert ShardPlan.block_seed(1234, 0) == 1234
        assert ShardPlan.block_seed(1234, 1) != 1234

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ShardPlan.plan(0)
        with pytest.raises(ConfigurationError):
            ShardPlan.plan(100, block_samples=0)
        with pytest.raises(ConfigurationError):
            ShardPlan.plan(100, shards=0)
        with pytest.raises(ConfigurationError):
            ShardPlan.plan(100, max_shard_samples=0)


class TestShardDescriptorRoundTrip:
    @pytest.mark.parametrize("shards", (1, 4, 13))
    def test_every_shard_round_trips(self, shards):
        from repro.runtime import Shard

        plan = ShardPlan.plan(1600, block_samples=128, shards=shards)
        for shard in plan.shards():
            rebuilt = Shard.from_descriptor(
                shard.descriptor(), block_samples=plan.block_samples,
                index=shard.index,
            )
            assert rebuilt == shard

    def test_partial_single_block_population(self):
        from repro.runtime import Shard

        plan = ShardPlan.plan(100, block_samples=128)
        (shard,) = plan.shards()
        assert Shard.from_descriptor(
            shard.descriptor(), block_samples=128
        ) == shard

    def test_validation(self):
        from repro.errors import ConfigurationError
        from repro.runtime import Shard

        good = {"start_block": 2, "n_blocks": 2, "n_samples": 192}
        assert Shard.from_descriptor(good, block_samples=128).blocks == (
            (2, 128), (3, 64),
        )
        with pytest.raises(ConfigurationError, match="block_samples"):
            Shard.from_descriptor(good, block_samples=0)
        with pytest.raises(ConfigurationError, match="must be an integer"):
            Shard.from_descriptor({**good, "n_blocks": "2"}, block_samples=128)
        with pytest.raises(ConfigurationError, match="must be an integer"):
            Shard.from_descriptor({"start_block": 0}, block_samples=128)
        with pytest.raises(ConfigurationError, match="start_block"):
            Shard.from_descriptor({**good, "start_block": -1}, block_samples=128)
        with pytest.raises(ConfigurationError, match="n_blocks"):
            Shard.from_descriptor({**good, "n_blocks": 0}, block_samples=128)
        # Too many samples for the block count, and too few.
        with pytest.raises(ConfigurationError, match="inconsistent"):
            Shard.from_descriptor({**good, "n_samples": 300}, block_samples=128)
        with pytest.raises(ConfigurationError, match="inconsistent"):
            Shard.from_descriptor({**good, "n_samples": 128}, block_samples=128)


class TestShardedBitIdentity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_matches_monolithic(self, analyzer, monolithic, shards):
        assert analyzer.analyze_sharded(0.7, shards=shards) == monolithic

    def test_max_shard_samples_does_not_change_results(self, analyzer, monolithic):
        bounded = analyzer.analyze_sharded(0.7, max_shard_samples=256)
        assert bounded == monolithic

    def test_parallel_shards_match_monolithic(self, analyzer, monolithic):
        assert analyzer.analyze_sharded(0.7, shards=4, jobs=2) == monolithic

    def test_subarray_sharding_does_not_change_rates(self, cell6):
        from repro.sram import SubArray

        plain = SubArray(cell=cell6, rows=64, cols=64, mc_samples=1600, seed=9)
        sharded = SubArray(
            cell=cell6, rows=64, cols=64, mc_samples=1600, seed=9,
            shards=5, max_shard_samples=512,
        )
        assert sharded.failure_rates(0.7) == plain.failure_rates(0.7)

    def test_tally_merge_rejects_overlap(self, analyzer):
        plan = analyzer.shard_plan(shards=2)
        resolved = analyzer.resolved()
        from repro.sram.montecarlo import tally_shard

        tally = tally_shard(resolved, 0.7, plan.shards()[0])
        with pytest.raises(ValueError, match="overlap"):
            MarginTally.merge([tally, tally])

    def test_tally_survives_json_round_trip(self, analyzer):
        plan = analyzer.shard_plan(shards=3)
        resolved = analyzer.resolved()
        from repro.sram.montecarlo import tally_shard

        tally = tally_shard(resolved, 0.7, plan.shards()[1])
        import json

        restored = MarginTally.from_dict(json.loads(json.dumps(tally.to_dict())))
        assert restored == tally


class TestShardCaching:
    def test_shard_tallies_are_cached_and_reused(self, analyzer, monolithic, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        cold = analyzer.analyze_sharded(0.7, shards=4, cache=cache)
        assert cold == monolithic
        assert cache.misses == 4
        warm = analyzer.analyze_sharded(0.7, shards=4, cache=cache)
        assert warm == monolithic
        assert cache.hits == 4
        assert cache.stats().by_namespace.get("mcshard", 0) == 4

    def test_shard_hits_survive_clearing_unrelated_namespaces(
        self, analyzer, monolithic, tmp_path
    ):
        cache = ResultCache(cache_dir=str(tmp_path))
        cache.put("mc", {"unrelated": 1}, {"x": 1})
        cache.put("cellpoint", {"unrelated": 2}, {"y": 2})
        analyzer.analyze_sharded(0.7, shards=4, cache=cache)

        assert cache.clear(namespace="mc") == 1
        assert cache.clear(namespace="cellpoint") == 1

        reread = ResultCache(cache_dir=str(tmp_path))
        warm = analyzer.analyze_sharded(0.7, shards=4, cache=reread)
        assert warm == monolithic
        assert reread.hits == 4 and reread.misses == 0

    def test_interrupted_run_resumes_from_completed_shards(
        self, analyzer, monolithic, tmp_path, monkeypatch
    ):
        cache = ResultCache(cache_dir=str(tmp_path))
        # Warm two of four shards by running a plan whose first two
        # shards cover the same block ranges (shard keys are layout
        # independent, so a 4-shard rerun picks them up).
        plan = analyzer.shard_plan(shards=4)
        resolved = analyzer.resolved()
        from functools import partial

        from repro.sram.montecarlo import MarginTally, tally_shard

        engine = ShardedMonteCarlo(plan, cache=cache)
        for shard in plan.shards()[:2]:
            tally = tally_shard(resolved, 0.7, shard)
            cache.put("mcshard", engine.shard_payload(resolved.cache_payload(0.7), shard),
                      tally.to_dict())

        full = engine.run(
            compute=partial(tally_shard, resolved, 0.7),
            payload=resolved.cache_payload(0.7),
            encode=MarginTally.to_dict,
            decode=MarginTally.from_dict,
            merge=MarginTally.merge,
        )
        assert cache.hits == 2 and cache.misses == 2
        from repro.sram.montecarlo import _rates_from_tally

        assert _rates_from_tally(0.7, full) == monolithic

    def test_completed_shards_persist_when_a_later_shard_dies(
        self, analyzer, monolithic, tmp_path
    ):
        """Interruption mid-run loses only in-flight shards: every shard
        that completed before the failure is already on disk."""
        cache = ResultCache(cache_dir=str(tmp_path))
        resolved = analyzer.resolved()
        plan = resolved.shard_plan(shards=4)
        from functools import partial

        from repro.sram.montecarlo import _rates_from_tally, tally_shard

        def dying_compute(shard):
            if shard.index == 2:
                raise KeyboardInterrupt("simulated mid-run interruption")
            return tally_shard(resolved, 0.7, shard)

        engine = ShardedMonteCarlo(plan, cache=cache)
        with pytest.raises(KeyboardInterrupt):
            engine.run(
                compute=dying_compute,
                payload=resolved.cache_payload(0.7),
                encode=MarginTally.to_dict,
                decode=MarginTally.from_dict,
                merge=MarginTally.merge,
            )
        # Shards 0 and 1 completed before the failure and were stored.
        assert cache.stats().by_namespace.get("mcshard", 0) == 2

        resumed = ResultCache(cache_dir=str(tmp_path))
        engine = ShardedMonteCarlo(plan, cache=resumed)
        full = engine.run(
            compute=partial(tally_shard, resolved, 0.7),
            payload=resolved.cache_payload(0.7),
            encode=MarginTally.to_dict,
            decode=MarginTally.from_dict,
            merge=MarginTally.merge,
        )
        assert resumed.hits == 2 and resumed.misses == 2
        assert _rates_from_tally(0.7, full) == monolithic

    def test_different_block_sizes_do_not_collide(self, cell6, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        a = MonteCarloAnalyzer(cell=cell6, n_samples=1600, seed=42, block_samples=128)
        b = MonteCarloAnalyzer(cell=cell6, n_samples=1600, seed=42, block_samples=400)
        a.analyze_sharded(0.7, shards=2, cache=cache)
        b.analyze_sharded(0.7, shards=2, cache=cache)
        assert cache.hits == 0
