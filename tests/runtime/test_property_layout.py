"""Property-based layout invariance of the sharded Monte-Carlo path.

PR 2's example-based suite checks a handful of shard counts; this one
lets hypothesis pick the whole layout — population size, block
granularity, shard count, per-shard ceiling — and asserts the library's
headline guarantee for every draw: the merged result is **bit-identical**
to the monolithic single-worker run, because block streams depend only
on ``(seed, block index)`` and the tally merge is exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import ResultCache, ShardPlan
from repro.sram.montecarlo import MonteCarloAnalyzer

#: One voltage in the middle of the characterized range, where both
#: pass/fail outcomes actually occur at small sample counts.
VDD = 0.7

_LAYOUTS = dict(
    n_samples=st.integers(min_value=100, max_value=700),
    block_samples=st.sampled_from((32, 64, 128, 256, 1024)),
    shards=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


@settings(max_examples=12, deadline=None)
@given(**_LAYOUTS)
def test_sharded_tallies_bit_identical_to_monolithic(
    cell6, n_samples, block_samples, shards, seed
):
    analyzer = MonteCarloAnalyzer(
        cell=cell6, n_samples=n_samples, seed=seed, block_samples=block_samples
    )
    monolithic = analyzer.analyze(VDD)
    sharded = analyzer.analyze_sharded(VDD, shards=shards, jobs=1, cache=None)
    assert sharded == monolithic  # dataclass equality over every float


@settings(max_examples=8, deadline=None)
@given(**_LAYOUTS)
def test_max_shard_samples_ceiling_never_changes_bits(
    cell6, n_samples, block_samples, shards, seed
):
    analyzer = MonteCarloAnalyzer(
        cell=cell6, n_samples=n_samples, seed=seed, block_samples=block_samples
    )
    ceiling = max(block_samples, n_samples // max(shards, 1), 1)
    plan = analyzer.shard_plan(max_shard_samples=ceiling)
    assert plan.max_samples_per_shard() <= max(ceiling, block_samples)
    bounded = analyzer.analyze_sharded(VDD, max_shard_samples=ceiling, jobs=1)
    assert bounded == analyzer.analyze(VDD)


@settings(max_examples=8, deadline=None)
@given(**_LAYOUTS)
def test_resharding_reuses_cache_without_changing_bits(
    cell6, n_samples, block_samples, shards, seed, tmp_path_factory
):
    analyzer = MonteCarloAnalyzer(
        cell=cell6, n_samples=n_samples, seed=seed, block_samples=block_samples
    )
    cache = ResultCache(
        cache_dir=str(tmp_path_factory.mktemp("layout-cache"))
    )
    first = analyzer.analyze_sharded(VDD, shards=shards, jobs=1, cache=cache)
    # A different grouping of the same blocks may hit the per-shard
    # entries of the first run (shard descriptors are layout-keyed, not
    # plan-keyed) — and must merge to the same bits either way.
    regrouped = analyzer.analyze_sharded(
        VDD, shards=min(shards + 2, ShardPlan.plan(
            n_samples, block_samples=block_samples).n_blocks),
        jobs=1, cache=cache,
    )
    assert first == regrouped == analyzer.analyze(VDD)


def test_layout_invariance_survives_process_fanout(cell6):
    """One multi-worker spot check (kept out of hypothesis: each spawn
    fan-out costs ~a second, and worker count cannot change bits that
    shard count already doesn't)."""
    analyzer = MonteCarloAnalyzer(
        cell=cell6, n_samples=600, seed=1234, block_samples=64
    )
    parallel = analyzer.analyze_sharded(VDD, shards=5, jobs=2, cache=None)
    assert parallel == analyzer.analyze(VDD)
