"""Observability of the tiered cache: drops are loud and structured.

A write-behind entry that falls off the queue (or exhausts its retry
budget) silently erodes the shared remote tier — the next fleet pays
recompute for a value this process already had.  The contract pinned
here: every drop emits a WARNING log *and* a flight-recorder
``write_behind_drop`` event, both carrying the dropped content address,
and a raising tier leaves a ``tier_error`` event behind.
"""

import logging
import threading

from repro.obs.flight import FlightRecorder, get_flight_recorder, set_flight_recorder
from repro.obs.metrics import MetricsRegistry
from repro.runtime.cache import CACHE_VERSION, content_key
from repro.runtime.tiering import TieredStore

from tests.runtime.test_tiering import RecordingStore


def drop_events(recorder):
    return [e for e in recorder.snapshot() if e["kind"] == "write_behind_drop"]


class TestWriteBehindDropObservability:
    def test_exhausted_retries_warn_and_record_the_address(self, caplog):
        flight = FlightRecorder(capacity=16)
        remote = RecordingStore(fail_puts=10**6)
        store = TieredStore(
            local=RecordingStore(), remote=remote,
            flush_retries=1, flush_backoff=0.001, flush_backoff_cap=0.005,
            flight=flight,
        )
        with caplog.at_level(logging.WARNING, logger="repro.runtime.tiering"):
            store.put("ns", {"k": 1}, "v")
            assert store.flush(timeout=10.0)
        store.close()
        assert store.dropped == 1

        address = content_key(
            "ns", {"k": 1}, getattr(remote, "version", CACHE_VERSION)
        )
        (event,) = drop_events(flight)
        assert event["namespace"] == "ns"
        assert event["address"] == address
        assert event["reason"] == "retries_exhausted"

        (record,) = [r for r in caplog.records
                     if "write-behind drop" in r.getMessage()]
        assert record.levelno == logging.WARNING
        assert address in record.getMessage()
        assert "recording:test" in record.getMessage()

    def test_queue_full_drops_are_recorded_per_entry(self, caplog):
        flight = FlightRecorder(capacity=32)
        gate = threading.Event()

        class Stalling(RecordingStore):
            def put(self, namespace, payload, value):
                gate.wait(10.0)
                super().put(namespace, payload, value)

        store = TieredStore(remote=Stalling(), flush_queue=2, flight=flight)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.tiering"):
            for k in range(6):
                store.put("ns", {"k": k}, "v")
        gate.set()
        assert store.flush(timeout=10.0)
        dropped = store.dropped
        store.close()
        assert dropped >= 3

        events = drop_events(flight)
        assert len(events) == dropped
        assert all(e["reason"] == "queue_full" for e in events)
        # Addresses are distinct: one event per dropped entry, each
        # naming exactly what will be missing from the remote tier.
        assert len({e["address"] for e in events}) == dropped
        warned = [r for r in caplog.records
                  if "write-behind drop" in r.getMessage()]
        assert len(warned) == dropped

    def test_without_injection_drops_reach_the_process_recorder(self):
        try:
            set_flight_recorder(None)
            store = TieredStore(
                local=RecordingStore(), remote=RecordingStore(fail_puts=10**6),
                flush_retries=0, flush_backoff=0.001, flush_backoff_cap=0.005,
            )
            store.put("ns", {"k": 2}, "v")
            assert store.flush(timeout=10.0)
            store.close()
            assert drop_events(get_flight_recorder())
        finally:
            set_flight_recorder(None)

    def test_raising_tier_records_a_tier_error_event(self):
        flight = FlightRecorder(capacity=16)
        store = TieredStore(
            local=RecordingStore(raise_on_get=True),
            remote=RecordingStore(),
            flight=flight,
        )
        assert store.get("ns", {"k": 3}) is None
        store.close()
        (event,) = [e for e in flight.snapshot() if e["kind"] == "tier_error"]
        assert event["tier"] == "local"
        assert event["op"] == "get"

    def test_write_behind_counters_live_in_the_registry(self):
        registry = MetricsRegistry()
        store = TieredStore(
            local=RecordingStore(), remote=RecordingStore(),
            metrics=registry,
        )
        store.put("ns", {"k": 4}, "v")
        assert store.flush(timeout=10.0)
        store.close()
        assert registry.counter(
            "repro_cache_write_behind_queued_total"
        ).value == 1
        assert registry.counter(
            "repro_cache_write_behind_flushed_total"
        ).value == 1
