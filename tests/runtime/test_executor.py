"""Tests of the parallel sweep executor."""

import operator
from functools import partial

import pytest

from repro.runtime import SweepExecutor, resolve_jobs
from repro.runtime.executor import _partition


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_negative_means_all_cores(self):
        assert resolve_jobs(-1) >= 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)


class TestPartition:
    def test_preserves_order_and_items(self):
        chunks = _partition(list(range(10)), 3)
        assert [x for chunk in chunks for x in chunk] == list(range(10))

    def test_near_equal_sizes(self):
        sizes = [len(c) for c in _partition(list(range(10)), 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_never_more_chunks_than_items(self):
        chunks = _partition([1, 2], 8)
        assert len(chunks) == 2
        assert all(chunks)

    def test_single_chunk(self):
        assert _partition([1, 2, 3], 1) == [[1, 2, 3]]


class TestSweepExecutorSerial:
    def test_map_preserves_order(self):
        out = SweepExecutor(jobs=1).map(partial(operator.mul, 3), range(6))
        assert out == [0, 3, 6, 9, 12, 15]

    def test_map_empty(self):
        assert SweepExecutor(jobs=1).map(abs, []) == []

    def test_map_chunked_serial(self):
        out = SweepExecutor(jobs=1).map_chunked(
            lambda chunk: [x + 1 for x in chunk], [1, 2, 3]
        )
        assert out == [2, 3, 4]

    def test_map_chunked_empty(self):
        assert SweepExecutor(jobs=1).map_chunked(list, []) == []

    def test_rejects_bad_chunks_per_worker(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=1, chunks_per_worker=0)


class TestSweepExecutorParallel:
    """The pool path must reproduce the serial path exactly."""

    def test_parallel_matches_serial(self):
        fn = partial(operator.mul, 7)
        items = list(range(11))
        serial = SweepExecutor(jobs=1).map(fn, items)
        parallel = SweepExecutor(jobs=2).map(fn, items)
        assert parallel == serial

    def test_more_workers_than_items(self):
        fn = partial(operator.add, 1)
        assert SweepExecutor(jobs=8).map(fn, [1, 2]) == [2, 3]

    def test_load_balanced_chunking_matches(self):
        fn = partial(operator.mul, 2)
        items = list(range(9))
        balanced = SweepExecutor(jobs=2, chunks_per_worker=3).map(fn, items)
        assert balanced == [2 * x for x in items]
