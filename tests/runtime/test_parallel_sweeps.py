"""End-to-end guarantees of the sweep runtime on the real Monte-Carlo
workload: parallel runs are bit-identical to serial ones, and a warm
cache serves sweeps without recomputing any Monte Carlo."""

import pytest

from repro.devices.variation import VariationModel
from repro.runtime import ResultCache
from repro.sram import characterize_cell, failure_rates_vs_vdd
from repro.sram.montecarlo import MonteCarloAnalyzer

VDDS = [0.65, 0.70, 0.80, 0.90]
N_SAMPLES = 400


@pytest.fixture(scope="module")
def serial_rates(cell6):
    return failure_rates_vs_vdd(cell6, VDDS, n_samples=N_SAMPLES, seed=11)


class TestParallelBitIdentity:
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_worker_count_does_not_change_results(self, cell6, serial_rates, jobs):
        parallel = failure_rates_vs_vdd(
            cell6, VDDS, n_samples=N_SAMPLES, seed=11, jobs=jobs
        )
        assert parallel == serial_rates  # FailureRates compares exactly

    def test_analyze_many_matches_analyze(self, cell6):
        analyzer = MonteCarloAnalyzer(cell=cell6, n_samples=N_SAMPLES, seed=11)
        batch = analyzer.analyze_many(VDDS)
        assert batch == [analyzer.analyze(v) for v in VDDS]

    def test_sweep_order_does_not_change_point_results(self, cell6):
        forward = failure_rates_vs_vdd(cell6, VDDS, n_samples=N_SAMPLES, seed=11)
        backward = failure_rates_vs_vdd(
            cell6, VDDS[::-1], n_samples=N_SAMPLES, seed=11
        )
        assert forward == backward[::-1]


class TestSweepCaching:
    def test_cached_sweep_is_bit_identical(self, cell6, serial_rates, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        cold = failure_rates_vs_vdd(
            cell6, VDDS, n_samples=N_SAMPLES, seed=11, cache=cache
        )
        warm = failure_rates_vs_vdd(
            cell6, VDDS, n_samples=N_SAMPLES, seed=11, cache=cache
        )
        assert cold == serial_rates
        assert warm == serial_rates
        assert cache.hits == len(VDDS)

    def test_warm_cache_skips_monte_carlo(self, cell6, tmp_path, monkeypatch):
        cache = ResultCache(cache_dir=str(tmp_path))
        failure_rates_vs_vdd(cell6, VDDS, n_samples=N_SAMPLES, seed=11, cache=cache)

        def boom(self, *args, **kwargs):
            raise AssertionError("Monte Carlo ran despite a warm cache")

        # Any recompute must draw ΔVT samples, whatever path it takes.
        monkeypatch.setattr(VariationModel, "sample", boom)
        warm = failure_rates_vs_vdd(
            cell6, VDDS, n_samples=N_SAMPLES, seed=11, cache=cache
        )
        assert [r.vdd for r in warm] == VDDS

    def test_version_bump_invalidates_sweep(self, cell6, tmp_path):
        d = str(tmp_path)
        failure_rates_vs_vdd(
            cell6, VDDS[:2], n_samples=N_SAMPLES, seed=11,
            cache=ResultCache(cache_dir=d, version=1),
        )
        bumped = ResultCache(cache_dir=d, version=2)
        failure_rates_vs_vdd(
            cell6, VDDS[:2], n_samples=N_SAMPLES, seed=11, cache=bumped
        )
        assert bumped.hits == 0
        assert bumped.misses == len(VDDS[:2])

    def test_different_seeds_do_not_collide(self, cell6, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        a = failure_rates_vs_vdd(
            cell6, VDDS[:1], n_samples=N_SAMPLES, seed=1, cache=cache
        )
        b = failure_rates_vs_vdd(
            cell6, VDDS[:1], n_samples=N_SAMPLES, seed=2, cache=cache
        )
        assert cache.hits == 0
        assert a != b


class TestCharacterizationCaching:
    def test_warm_characterization_skips_monte_carlo(
        self, tech, tmp_path, monkeypatch
    ):
        kwargs = dict(
            cell_kind="6t", technology=tech, vdd_grid=(0.70, 0.80),
            n_samples=N_SAMPLES, cache_dir=str(tmp_path),
        )
        cold = characterize_cell(**kwargs)

        def boom(self, *args, **kwargs):
            raise AssertionError("Monte Carlo ran despite a warm cache")

        monkeypatch.setattr(VariationModel, "sample", boom)
        warm = characterize_cell(**kwargs)
        assert warm == cold

    def test_point_cache_survives_grid_growth(self, tech, tmp_path, monkeypatch):
        cache_dir = str(tmp_path)
        characterize_cell(
            cell_kind="6t", technology=tech, vdd_grid=(0.70, 0.80),
            n_samples=N_SAMPLES, cache_dir=cache_dir,
        )
        calls = []
        original = MonteCarloAnalyzer.analyze

        def counting(self, vdd, seed=None):
            calls.append(float(vdd))
            return original(self, vdd, seed=seed)

        monkeypatch.setattr(MonteCarloAnalyzer, "analyze", counting)
        grown = characterize_cell(
            cell_kind="6t", technology=tech, vdd_grid=(0.70, 0.80, 0.90),
            n_samples=N_SAMPLES, cache_dir=cache_dir,
        )
        # Only the new grid point pays for Monte Carlo.
        assert calls == [0.90]
        assert [p.vdd for p in grown.points] == [0.70, 0.80, 0.90]

    def test_no_cache_flag_recomputes(self, tech, tmp_path):
        kwargs = dict(
            cell_kind="6t", technology=tech, vdd_grid=(0.70,),
            n_samples=N_SAMPLES, cache_dir=str(tmp_path),
        )
        characterize_cell(**kwargs)
        table = characterize_cell(use_cache=False, **kwargs)
        assert [p.vdd for p in table.points] == [0.70]
        # use_cache=False must not have written anything new either.
        cache = ResultCache(cache_dir=str(tmp_path))
        stats = cache.stats()
        assert stats.by_namespace.get("cell", 0) == 1
        assert stats.by_namespace.get("cellpoint", 0) == 1

    def test_parallel_characterization_is_bit_identical(self, tech, tmp_path):
        kwargs = dict(
            cell_kind="6t", technology=tech, vdd_grid=(0.70, 0.80, 0.90),
            n_samples=N_SAMPLES, use_cache=False,
        )
        serial = characterize_cell(jobs=1, **kwargs)
        parallel = characterize_cell(jobs=2, **kwargs)
        assert serial == parallel
