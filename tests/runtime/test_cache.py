"""Tests of the content-addressed result cache."""

import json
import os
import threading

import numpy as np
import pytest

from repro.runtime import ResultCache


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(cache_dir=str(tmp_path / "cache"))


class TestAddressing:
    def test_key_is_deterministic_across_instances(self, tmp_path):
        a = ResultCache(cache_dir=str(tmp_path))
        b = ResultCache(cache_dir=str(tmp_path))
        payload = {"cell": "6t", "vdd": 0.7, "n": 1000}
        assert a.key("mc", payload) == b.key("mc", payload)

    def test_key_ignores_dict_order(self, cache):
        assert cache.key("mc", {"a": 1, "b": 2}) == cache.key("mc", {"b": 2, "a": 1})

    def test_key_differs_by_payload(self, cache):
        assert cache.key("mc", {"vdd": 0.7}) != cache.key("mc", {"vdd": 0.75})

    def test_key_differs_by_namespace(self, cache):
        assert cache.key("mc", {"vdd": 0.7}) != cache.key("is", {"vdd": 0.7})

    def test_numpy_values_canonicalized(self, cache):
        assert cache.key("mc", {"vdd": np.float64(0.7)}) == \
            cache.key("mc", {"vdd": 0.7})
        assert cache.key("mc", {"grid": np.array([0.7, 0.8])}) == \
            cache.key("mc", {"grid": [0.7, 0.8]})

    def test_unserializable_payload_rejected(self, cache):
        with pytest.raises(TypeError):
            cache.key("mc", {"cell": object()})


class TestRoundtrip:
    def test_miss_returns_none(self, cache):
        assert cache.get("mc", {"vdd": 0.7}) is None
        assert cache.misses == 1

    def test_put_then_get(self, cache):
        value = {"p_cell": 1.25e-3, "stats": {"mu": 0.1}}
        cache.put("mc", {"vdd": 0.7}, value)
        assert cache.get("mc", {"vdd": 0.7}) == value
        assert cache.hits == 1

    def test_floats_roundtrip_bit_exact(self, cache):
        value = {"p": 0.1 + 0.2, "tiny": 4.9e-324}
        cache.put("mc", {"k": 1}, value)
        got = cache.get("mc", {"k": 1})
        assert got["p"] == value["p"]
        assert got["tiny"] == value["tiny"]

    def test_get_or_compute(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"x": 42}

        assert cache.get_or_compute("mc", {"k": 1}, compute) == {"x": 42}
        assert cache.get_or_compute("mc", {"k": 1}, compute) == {"x": 42}
        assert len(calls) == 1

    def test_corrupt_entry_is_a_miss(self, cache):
        cache.put("mc", {"k": 1}, {"x": 1})
        with open(cache.path("mc", {"k": 1}), "w") as fh:
            fh.write("{not json")
        assert cache.get("mc", {"k": 1}) is None

    def test_non_utf8_entry_is_a_miss(self, cache):
        cache.put("mc", {"k": 1}, {"x": 1})
        with open(cache.path("mc", {"k": 1}), "wb") as fh:
            fh.write(b"\xff\xfe\x00garbage")
        assert cache.get("mc", {"k": 1}) is None

    def test_foreign_json_shape_is_a_miss(self, cache):
        cache.put("mc", {"k": 1}, {"x": 1})
        for foreign in ("[1, 2, 3]", '{"no": "value key"}', '"just a string"'):
            with open(cache.path("mc", {"k": 1}), "w") as fh:
                fh.write(foreign)
            assert cache.get("mc", {"k": 1}) is None

    def test_no_temp_files_left_behind(self, cache):
        for i in range(5):
            cache.put("mc", {"k": i}, {"x": i})
        leftovers = [n for n in os.listdir(cache.cache_dir) if n.endswith(".tmp")]
        assert leftovers == []


class TestInvalidation:
    def test_version_bump_invalidates(self, tmp_path):
        d = str(tmp_path / "cache")
        v1 = ResultCache(cache_dir=d, version=1)
        v1.put("mc", {"k": 1}, {"x": 1})
        assert v1.get("mc", {"k": 1}) == {"x": 1}

        v2 = ResultCache(cache_dir=d, version=2)
        assert v2.get("mc", {"k": 1}) is None
        v2.put("mc", {"k": 1}, {"x": 2})
        # Both versions remain independently addressable.
        assert v1.get("mc", {"k": 1}) == {"x": 1}
        assert v2.get("mc", {"k": 1}) == {"x": 2}

    def test_disabled_cache_never_hits(self, tmp_path):
        d = str(tmp_path / "cache")
        off = ResultCache(cache_dir=d, enabled=False)
        off.put("mc", {"k": 1}, {"x": 1})
        assert off.get("mc", {"k": 1}) is None
        on = ResultCache(cache_dir=d)
        assert on.get("mc", {"k": 1}) is None  # put was a no-op


class TestMaintenance:
    def test_stats_counts_namespaces(self, cache):
        cache.put("mc", {"k": 1}, {"x": 1})
        cache.put("mc", {"k": 2}, {"x": 2})
        cache.put("cell", {"k": 1}, {"x": 3})
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.by_namespace == {"mc": 2, "cell": 1}
        assert stats.total_bytes > 0
        assert "entries" in stats.summary()

    def test_stats_counts_legacy_underscore_files(self, cache):
        os.makedirs(cache.cache_dir, exist_ok=True)
        with open(os.path.join(cache.cache_dir, "ann_0123abcd.npz"), "wb") as fh:
            fh.write(b"\x00")
        assert cache.stats().by_namespace == {"ann": 1}

    def test_clear_namespace(self, cache):
        cache.put("mc", {"k": 1}, {"x": 1})
        cache.put("cell", {"k": 1}, {"x": 2})
        assert cache.clear(namespace="mc") == 1
        assert cache.get("mc", {"k": 1}) is None
        assert cache.get("cell", {"k": 1}) == {"x": 2}

    def test_clear_all(self, cache):
        cache.put("mc", {"k": 1}, {"x": 1})
        cache.put("cell", {"k": 1}, {"x": 2})
        assert cache.clear() == 2
        assert cache.stats().entries == 0

    def test_stats_on_missing_dir(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path / "nope"))
        assert cache.stats().entries == 0
        assert cache.clear() == 0


class TestConcurrency:
    """Atomic writes: concurrent writers never expose a torn document."""

    def test_concurrent_writers_and_readers(self, cache):
        payload = {"k": "contended"}
        value = {"x": list(range(200))}  # big enough to make torn writes likely
        cache.put("mc", payload, value)
        errors = []
        stop = threading.Event()

        def writer():
            local = ResultCache(cache_dir=cache.cache_dir)
            while not stop.is_set():
                local.put("mc", payload, value)

        def reader():
            local = ResultCache(cache_dir=cache.cache_dir)
            for _ in range(300):
                got = local.get("mc", payload)
                if got != value:  # a miss here would mean a torn/partial file
                    errors.append(got)

        writers = [threading.Thread(target=writer) for _ in range(2)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in writers + readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        for t in writers:
            t.join()
        assert errors == []

    def test_concurrent_distinct_keys(self, cache):
        def worker(i):
            local = ResultCache(cache_dir=cache.cache_dir)
            local.put("mc", {"k": i}, {"x": i})

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(8):
            assert cache.get("mc", {"k": i}) == {"x": i}

    def test_document_is_valid_json_on_disk(self, cache):
        cache.put("mc", {"k": 1}, {"x": 1})
        with open(cache.path("mc", {"k": 1})) as fh:
            document = json.load(fh)
        assert document["value"] == {"x": 1}
        assert document["payload"] == {"k": 1}


class TestTTL:
    def test_entry_younger_than_ttl_hits(self, cache):
        cache.put("mc", {"k": 1}, "fresh")
        assert cache.get("mc", {"k": 1}, ttl=3600.0) == "fresh"

    def test_expiry_at_exactly_ttl(self, cache):
        """The boundary rule: an entry that has lived its FULL ttl (age
        >= ttl, not age > ttl) is expired."""
        cache.put("mc", {"k": 1}, "stale")
        path = cache.path("mc", {"k": 1})
        import time as _time

        exactly = _time.time() - 30.0
        os.utime(path, (exactly, exactly))
        assert cache.get("mc", {"k": 1}, ttl=30.0) is None

    def test_expired_file_left_for_compact(self, cache):
        cache.put("mc", {"k": 1}, "stale")
        path = cache.path("mc", {"k": 1})
        os.utime(path, (0, 0))
        assert cache.get("mc", {"k": 1}, ttl=1.0) is None
        assert os.path.exists(path)

    def test_ttl_none_never_expires(self, cache):
        cache.put("mc", {"k": 1}, "old")
        os.utime(cache.path("mc", {"k": 1}), (0, 0))
        assert cache.get("mc", {"k": 1}) == "old"

    def test_backward_clock_step_clamps_age_to_zero(self, cache, monkeypatch):
        """File ages are wall-clock (``time.time() - mtime``), so a
        backward clock step makes entries look younger than they are —
        but never *negatively* aged.  The clamp's observable edge is
        ``ttl=0`` ("already expired"): a negative age would compare
        ``< 0`` and resurrect the entry."""
        import time as _time

        cache.put("mc", {"k": 1}, "fresh")
        mtime = os.path.getmtime(cache.path("mc", {"k": 1}))
        monkeypatch.setattr(_time, "time", lambda: mtime - 1000.0)
        # Clamped age 0 is younger than any positive ttl: a hit.
        assert cache.get("mc", {"k": 1}, ttl=30.0) == "fresh"
        # ...and exactly at ttl=0, so the entry is already expired —
        # unclamped, -1000 < 0 would make ttl=0 a hit.
        assert cache.get("mc", {"k": 1}, ttl=0.0) is None


class TestCompaction:
    def _plant(self, cache, namespace, key, age, size=None):
        """One entry whose file is ``age`` seconds old (and optionally
        padded to a deliberate size for byte-budget tests)."""
        import time as _time

        cache.put(namespace, {"k": key}, "x" * (size or 1))
        path = cache.path(namespace, {"k": key})
        then = _time.time() - age
        os.utime(path, (then, then))
        return path

    def test_max_age_zero_reaps_future_mtime_files(self, cache):
        """A file stamped *ahead* of the wall clock (clock stepped back
        since it was written) has clamped age 0, so ``max_age=0``
        deletes it like everything else — unclamped, its negative age
        would dodge compaction forever."""
        future = self._plant(cache, "mc", "future", age=-3600.0)
        result = cache.compact(max_age=0.0)
        assert result.removed == 1
        assert not os.path.exists(future)

    def test_max_age_deletes_exactly_the_expired(self, cache):
        old = self._plant(cache, "mc", "old", age=100.0)
        boundary = self._plant(cache, "mc", "boundary", age=50.0)
        fresh = self._plant(cache, "mc", "fresh", age=0.0)
        result = cache.compact(max_age=50.0)
        # age >= max_age expires: the boundary entry goes too (same rule
        # get(ttl=...) applies, so compact deletes what reads refuse).
        assert result.removed == 2
        assert not os.path.exists(old) and not os.path.exists(boundary)
        assert os.path.exists(fresh)
        assert result.remaining == 1

    def test_max_bytes_evicts_oldest_first(self, cache):
        oldest = self._plant(cache, "mc", "a", age=30.0)
        middle = self._plant(cache, "mc", "b", age=20.0)
        newest = self._plant(cache, "mc", "c", age=10.0)
        one = os.path.getsize(newest)
        result = cache.compact(max_bytes=2 * one)
        assert result.removed == 1
        assert not os.path.exists(oldest)
        assert os.path.exists(middle) and os.path.exists(newest)
        assert result.remaining_bytes <= 2 * one

    def test_namespace_filter(self, cache):
        doomed = self._plant(cache, "mc", "x", age=100.0)
        spared = self._plant(cache, "serve", "x", age=100.0)
        result = cache.compact(namespace="mc", max_age=1.0)
        assert result.removed == 1
        assert not os.path.exists(doomed)
        assert os.path.exists(spared)

    def test_empty_namespace_is_a_noop(self, cache):
        survivor = self._plant(cache, "mc", "x", age=100.0)
        result = cache.compact(namespace="nothing-here", max_age=0.0,
                               max_bytes=0)
        assert result.removed == 0 and result.reclaimed_bytes == 0
        assert result.remaining == 0
        assert os.path.exists(survivor)

    def test_compact_without_policies_removes_nothing(self, cache):
        self._plant(cache, "mc", "x", age=100.0)
        result = cache.compact()
        assert result.removed == 0
        assert result.remaining == 1

    def test_missing_dir_is_a_noop(self, tmp_path):
        result = ResultCache(cache_dir=str(tmp_path / "never")).compact(
            max_age=1.0
        )
        assert result.removed == 0 and result.remaining == 0

    def test_summary_mentions_counts(self, cache):
        self._plant(cache, "mc", "x", age=100.0)
        result = cache.compact(max_age=1.0)
        assert "removed 1 entries" in result.summary()
