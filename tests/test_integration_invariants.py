"""Cross-module integration invariants.

These tests pin down relationships that hold *between* subsystems —
exactly the places where refactoring one module can silently skew the
paper's numbers without any unit test noticing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import (
    CellTables,
    HybridBank,
    WordFormat,
    base_architecture,
    compare_architectures,
    config1_architecture,
    config2_architecture,
)

SYNAPSES = [1500, 800, 300]


@pytest.fixture(scope="module")
def tables(tech):
    return CellTables.build(
        technology=tech, vdd_grid=(0.65, 0.75, 0.85, 0.95),
        n_samples=2000, use_cache=False,
    )


class TestConfigEquivalences:
    def test_config1_is_uniform_config2(self, tables):
        """Config 1 with n MSBs must be *numerically identical* to
        Config 2 with a uniform allocation of n."""
        c1 = config1_architecture(SYNAPSES, tables, vdd=0.65, msb_in_8t=2)
        c2 = config2_architecture(SYNAPSES, tables, vdd=0.65,
                                  msb_per_layer=[2, 2, 2])
        assert c1.area == pytest.approx(c2.area, rel=1e-12)
        assert c1.access_power == pytest.approx(c2.access_power, rel=1e-12)
        assert c1.leakage_power == pytest.approx(c2.leakage_power, rel=1e-12)
        for b1, b2 in zip(c1.banks, c2.banks):
            np.testing.assert_allclose(
                b1.bit_error_rates(0.65).p_total,
                b2.bit_error_rates(0.65).p_total,
            )

    def test_base_is_config1_with_zero_protection(self, tables):
        base = base_architecture(SYNAPSES, tables, vdd=0.75)
        c1 = config1_architecture(SYNAPSES, tables, vdd=0.75, msb_in_8t=0)
        assert base.area == pytest.approx(c1.area, rel=1e-12)
        assert base.access_power == pytest.approx(c1.access_power, rel=1e-12)

    def test_architecture_aggregates_are_bank_sums(self, tables):
        arch = config2_architecture(SYNAPSES, tables, vdd=0.65,
                                    msb_per_layer=[1, 2, 3])
        assert arch.area == pytest.approx(sum(b.area for b in arch.banks))
        assert arch.leakage_power == pytest.approx(
            sum(b.leakage_power(0.65) for b in arch.banks)
        )
        assert arch.n_words == sum(SYNAPSES)
        assert arch.n_8t_cells + arch.n_6t_cells == 8 * sum(SYNAPSES)


class TestComparisonAlgebra:
    def test_reciprocal_consistency(self, tables):
        """reduction(A vs B) and reduction(B vs A) must be reciprocal:
        (1 - rAB) * (1 - rBA) == 1."""
        a = config1_architecture(SYNAPSES, tables, vdd=0.65, msb_in_8t=3)
        b = base_architecture(SYNAPSES, tables, vdd=0.75)
        r_ab = compare_architectures(a, b)
        r_ba = compare_architectures(b, a)
        prod = ((1 - r_ab.access_power_reduction_pct / 100)
                * (1 - r_ba.access_power_reduction_pct / 100))
        assert prod == pytest.approx(1.0, rel=1e-9)

    def test_area_overhead_transitivity(self, tables):
        base = base_architecture(SYNAPSES, tables, vdd=0.75)
        c1 = config1_architecture(SYNAPSES, tables, vdd=0.65, msb_in_8t=1)
        c3 = config1_architecture(SYNAPSES, tables, vdd=0.65, msb_in_8t=3)
        o1 = compare_architectures(c1, base).area_overhead_pct
        o3 = compare_architectures(c3, base).area_overhead_pct
        o13 = compare_architectures(c3, c1).area_overhead_pct
        lhs = (1 + o3 / 100)
        rhs = (1 + o1 / 100) * (1 + o13 / 100)
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestWordEnergyInterpolation:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(0, 8))
    def test_hybrid_word_energy_is_linear_in_split(self, tables, n):
        """A word's read energy must interpolate linearly between the
        all-6T and all-8T endpoints as MSBs migrate to 8T cells."""
        bank = HybridBank("b", 100, WordFormat(8, n), tables)
        e6 = HybridBank("b", 100, WordFormat(8, 0), tables).read_energy_per_word(0.75)
        e8 = HybridBank("b", 100, WordFormat(8, 8), tables).read_energy_per_word(0.75)
        expected = e6 + (e8 - e6) * n / 8
        assert bank.read_energy_per_word(0.75) == pytest.approx(expected, rel=1e-12)


class TestFaultPipelineRoundtrip:
    def test_full_protection_is_fault_free_end_to_end(self, tables):
        """An all-8T memory at 0.65 V must leave the quantized image
        untouched through the whole injection pipeline."""
        from repro.nn import FeedforwardANN, NetworkSpec, quantize_network

        net = FeedforwardANN(NetworkSpec(layer_sizes=(10, 8, 4), seed=1))
        image = quantize_network(net)
        arch = config1_architecture([8 * 10 + 8, 4 * 8 + 4], tables,
                                    vdd=0.65, msb_in_8t=8)
        injector = arch.fault_injector()
        out = injector.inject(image, seed=3)
        for clean, maybe in zip(image.weight_codes, out.weight_codes):
            np.testing.assert_array_equal(clean, maybe)

    def test_injection_preserves_word_width(self, tables):
        from repro.nn import FeedforwardANN, NetworkSpec, quantize_network

        net = FeedforwardANN(NetworkSpec(layer_sizes=(10, 8, 4), seed=1))
        image = quantize_network(net)
        arch = base_architecture([88, 36], tables, vdd=0.65)
        out = arch.fault_injector().inject(image, seed=4)
        for codes in out.weight_codes + out.bias_codes:
            assert int(codes.max(initial=0)) <= image.fmt.code_mask
