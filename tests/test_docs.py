"""Documentation integrity checks (no mkdocs dependency).

Three guarantees, enforced in tier-1 so the docs cannot rot silently:

* every relative link in README.md and docs/*.md resolves to a real
  file (anchors and external URLs are skipped);
* docs/reproducing.md covers every ``benchmarks/bench_*.py`` script —
  the acceptance bar for the reproduction map;
* every page named in the mkdocs nav exists (the strict mkdocs build in
  CI re-checks this with full rendering).
"""

import os
import re
import glob

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = os.path.join(REPO, "docs")

#: ``[text](target)`` — good enough for our hand-written markdown
#: (no nested brackets, no angle-bracket autolinks).
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _markdown_files():
    files = [os.path.join(REPO, "README.md")]
    files += sorted(glob.glob(os.path.join(DOCS, "*.md")))
    return files


def test_docs_tree_exists():
    for name in ("index.md", "architecture.md", "runtime.md", "reproducing.md"):
        assert os.path.isfile(os.path.join(DOCS, name)), f"docs/{name} missing"


def test_relative_links_resolve():
    broken = []
    for path in _markdown_files():
        base = os.path.dirname(path)
        with open(path) as fh:
            text = fh.read()
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            if not resolved.startswith(REPO + os.sep):
                # Escapes the repo (e.g. the GitHub-relative CI badge);
                # only same-repo references are checkable here.
                continue
            if not os.path.exists(resolved):
                broken.append(f"{os.path.relpath(path, REPO)} -> {target}")
    assert not broken, "broken relative links:\n" + "\n".join(broken)


def test_reproducing_covers_every_benchmark():
    with open(os.path.join(DOCS, "reproducing.md")) as fh:
        text = fh.read()
    scripts = sorted(
        glob.glob(os.path.join(REPO, "benchmarks", "bench_*.py"))
        + glob.glob(os.path.join(REPO, "benchmarks", "ablations", "bench_*.py"))
    )
    assert scripts, "no benchmark scripts found — wrong repo layout?"
    missing = [
        os.path.relpath(s, REPO)
        for s in scripts
        if os.path.basename(s) not in text
    ]
    assert not missing, "benchmarks absent from docs/reproducing.md:\n" + "\n".join(
        missing
    )


def test_mkdocs_nav_pages_exist():
    with open(os.path.join(REPO, "mkdocs.yml")) as fh:
        text = fh.read()
    pages = re.findall(r":\s*([\w./-]+\.md)\s*$", text, flags=re.MULTILINE)
    assert pages, "mkdocs.yml nav lists no pages"
    for page in pages:
        assert os.path.isfile(os.path.join(DOCS, page)), f"nav page docs/{page} missing"


def test_readme_links_into_docs():
    with open(os.path.join(REPO, "README.md")) as fh:
        text = fh.read()
    for name in ("docs/architecture.md", "docs/runtime.md", "docs/reproducing.md"):
        assert name in text, f"README quickstart must link {name}"
