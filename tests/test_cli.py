"""Tests of the command-line interface (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for cmd in ("characterize", "scaling", "hybrid", "sensitivity",
                    "allocate"):
            args = parser.parse_args([cmd] if cmd != "allocate"
                                     else [cmd, "--max-drop", "2"])
            assert args.command == cmd
        assert parser.parse_args(["cache", "stats"]).command == "cache"

    def test_jobs_and_no_cache_on_every_sweep_subcommand(self):
        parser = build_parser()
        for cmd in ("characterize", "scaling", "hybrid", "sensitivity",
                    "allocate"):
            args = parser.parse_args([cmd, "--jobs", "4", "--no-cache"])
            assert args.jobs == 4
            assert args.no_cache is True
            defaults = parser.parse_args([cmd])
            assert defaults.jobs is None
            assert defaults.no_cache is False

    def test_shards_flags_on_every_sweep_subcommand(self):
        parser = build_parser()
        for cmd in ("characterize", "scaling", "hybrid", "sensitivity",
                    "allocate"):
            args = parser.parse_args(
                [cmd, "--shards", "4", "--max-shard-samples", "512",
                 "--block-samples", "256"]
            )
            assert args.shards == 4
            assert args.max_shard_samples == 512
            assert args.block_samples == 256
            defaults = parser.parse_args([cmd])
            assert defaults.shards is None
            assert defaults.max_shard_samples is None
            assert defaults.block_samples is None

    def test_unknown_technology_fails_cleanly(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown technology"):
            main(["characterize", "--tech", "ptm3000", "--samples", "2000"])

    def test_serve_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9000",
             "--batch-window", "0.05", "--max-batch", "8", "--stdin"]
        )
        assert args.command == "serve"
        assert args.host == "0.0.0.0" and args.port == 9000
        assert args.batch_window == 0.05 and args.max_batch == 8
        assert args.stdin is True
        defaults = parser.parse_args(["serve"])
        assert defaults.stdin is False
        assert defaults.batch_window == 0.01 and defaults.max_batch == 32
        # serve shares the sweep-runtime knobs (it builds the same
        # simulator under the hood).
        assert defaults.jobs is None and defaults.no_cache is False


class TestCharacterizeCommand:
    def test_characterize_prints_table(self, capsys, tmp_cache):
        exit_code = main(["characterize", "--cell", "6t", "--samples", "2000"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "P(read acc)" in out
        assert "0.95" in out
        assert "um^2" in out

    def test_characterize_8t(self, capsys, tmp_cache):
        exit_code = main(["characterize", "--cell", "8t", "--samples", "2000"])
        assert exit_code == 0
        assert "8T cell" in capsys.readouterr().out

    def test_characterize_no_cache_leaves_store_empty(self, capsys, tmp_cache):
        exit_code = main(["characterize", "--cell", "6t", "--samples", "2000",
                          "--no-cache"])
        assert exit_code == 0
        assert not tmp_cache.exists() or not any(tmp_cache.iterdir())

    def test_characterize_sharded_round_trip(self, capsys, tmp_cache):
        """--shards changes execution, caching granularity — and no output.

        The population is pinned with --block-samples (that knob *defines*
        the sample streams); only the execution knobs vary between runs.
        """
        base = ["characterize", "--cell", "6t", "--samples", "2000",
                "--block-samples", "512"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        from repro.runtime import ResultCache

        ResultCache().clear()  # force the sharded run to recompute
        assert main(base + ["--shards", "3", "--max-shard-samples", "1024"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == plain
        # Shard tallies landed in their own namespace alongside the table:
        # 2000 samples / 512-sample blocks -> 4 blocks -> 3 ragged shards.
        stats = ResultCache().stats()
        assert stats.by_namespace.get("mcshard", 0) == 3 * 8  # shards x grid


class TestCacheCommand:
    def test_stats_on_empty_cache(self, capsys, tmp_cache):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries   : 0" in out

    def test_stats_after_characterize(self, capsys, tmp_cache):
        main(["characterize", "--cell", "6t", "--samples", "2000"])
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "cellpoint" in out

    def test_clear_namespace_then_all(self, capsys, tmp_cache):
        main(["characterize", "--cell", "6t", "--samples", "2000"])
        capsys.readouterr()
        assert main(["cache", "clear", "--namespace", "cell"]) == 0
        assert "removed 1 cache entries" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert main(["cache", "stats"]) == 0
        assert "entries   : 0" in capsys.readouterr().out
