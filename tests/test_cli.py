"""Tests of the command-line interface (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for cmd in ("characterize", "scaling", "hybrid", "sensitivity",
                    "allocate"):
            args = parser.parse_args([cmd] if cmd != "allocate"
                                     else [cmd, "--max-drop", "2"])
            assert args.command == cmd
        assert parser.parse_args(["cache", "stats"]).command == "cache"

    def test_jobs_and_no_cache_on_every_sweep_subcommand(self):
        parser = build_parser()
        for cmd in ("characterize", "scaling", "hybrid", "sensitivity",
                    "allocate"):
            args = parser.parse_args([cmd, "--jobs", "4", "--no-cache"])
            assert args.jobs == 4
            assert args.no_cache is True
            defaults = parser.parse_args([cmd])
            assert defaults.jobs is None
            assert defaults.no_cache is False

    def test_shards_flags_on_every_sweep_subcommand(self):
        parser = build_parser()
        for cmd in ("characterize", "scaling", "hybrid", "sensitivity",
                    "allocate"):
            args = parser.parse_args(
                [cmd, "--shards", "4", "--max-shard-samples", "512",
                 "--block-samples", "256"]
            )
            assert args.shards == 4
            assert args.max_shard_samples == 512
            assert args.block_samples == 256
            defaults = parser.parse_args([cmd])
            assert defaults.shards is None
            assert defaults.max_shard_samples is None
            assert defaults.block_samples is None

    def test_unknown_technology_fails_cleanly(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown technology"):
            main(["characterize", "--tech", "ptm3000", "--samples", "2000"])

    def test_serve_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9000",
             "--batch-window", "0.05", "--max-batch", "8", "--stdin"]
        )
        assert args.command == "serve"
        assert args.host == "0.0.0.0" and args.port == 9000
        assert args.batch_window == 0.05 and args.max_batch == 8
        assert args.stdin is True
        defaults = parser.parse_args(["serve"])
        assert defaults.stdin is False
        assert defaults.batch_window == 0.01 and defaults.max_batch == 32
        # serve shares the sweep-runtime knobs (it builds the same
        # simulator under the hood).
        assert defaults.jobs is None and defaults.no_cache is False
        # Serving hardening: backpressure bound and the stats probe.
        assert defaults.max_inflight == 64 and defaults.stats is False
        probe = parser.parse_args(["serve", "--stats", "--max-inflight", "8"])
        assert probe.stats is True and probe.max_inflight == 8

    def test_worker_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["worker", "--connect", "10.0.0.5:8417",
             "--cache-dir", "/mnt/store", "--name", "rack3-a",
             "--max-jobs", "100"]
        )
        assert args.command == "worker"
        assert args.connect == "10.0.0.5:8417"
        assert args.cache_dir == "/mnt/store"
        assert args.name == "rack3-a" and args.max_jobs == 100
        with pytest.raises(SystemExit):  # --connect is required
            parser.parse_args(["worker"])

    def test_dispatch_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["dispatch", "--listen", "0.0.0.0:9001",
             "--cache-dir", "/mnt/store", "--max-retries", "5",
             "--min-workers", "2", "--cell", "8t", "--samples", "4000",
             "--vdd", "0.65", "--vdd", "0.7", "--shards", "8",
             "--max-shard-samples", "1024", "--block-samples", "512"]
        )
        assert args.command == "dispatch"
        assert args.listen == "0.0.0.0:9001"
        assert args.max_retries == 5 and args.min_workers == 2
        assert args.vdd == [0.65, 0.7]
        assert args.shards == 8 and args.block_samples == 512
        defaults = parser.parse_args(["dispatch"])
        assert defaults.listen == "127.0.0.1:8417"
        assert defaults.max_retries == 3 and defaults.min_workers == 1
        assert defaults.vdd is None and defaults.stats is False

    def test_endpoint_parsing(self):
        from repro.cli import _parse_endpoint
        from repro.errors import ConfigurationError

        assert _parse_endpoint("10.0.0.5:8417", "--connect") == ("10.0.0.5", 8417)
        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            _parse_endpoint("8417", "--connect")
        with pytest.raises(ConfigurationError, match="port"):
            _parse_endpoint("host:abc", "--connect")


class TestCharacterizeCommand:
    def test_characterize_prints_table(self, capsys, tmp_cache):
        exit_code = main(["characterize", "--cell", "6t", "--samples", "2000"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "P(read acc)" in out
        assert "0.95" in out
        assert "um^2" in out

    def test_characterize_8t(self, capsys, tmp_cache):
        exit_code = main(["characterize", "--cell", "8t", "--samples", "2000"])
        assert exit_code == 0
        assert "8T cell" in capsys.readouterr().out

    def test_characterize_no_cache_leaves_store_empty(self, capsys, tmp_cache):
        exit_code = main(["characterize", "--cell", "6t", "--samples", "2000",
                          "--no-cache"])
        assert exit_code == 0
        assert not tmp_cache.exists() or not any(tmp_cache.iterdir())

    def test_characterize_sharded_round_trip(self, capsys, tmp_cache):
        """--shards changes execution, caching granularity — and no output.

        The population is pinned with --block-samples (that knob *defines*
        the sample streams); only the execution knobs vary between runs.
        """
        base = ["characterize", "--cell", "6t", "--samples", "2000",
                "--block-samples", "512"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        from repro.runtime import ResultCache

        ResultCache().clear()  # force the sharded run to recompute
        assert main(base + ["--shards", "3", "--max-shard-samples", "1024"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == plain
        # Shard tallies landed in their own namespace alongside the table:
        # 2000 samples / 512-sample blocks -> 4 blocks -> 3 ragged shards.
        stats = ResultCache().stats()
        assert stats.by_namespace.get("mcshard", 0) == 3 * 8  # shards x grid


class TestCacheCommand:
    def test_stats_on_empty_cache(self, capsys, tmp_cache):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries   : 0" in out

    def test_stats_after_characterize(self, capsys, tmp_cache):
        main(["characterize", "--cell", "6t", "--samples", "2000"])
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "cellpoint" in out

    def test_clear_namespace_then_all(self, capsys, tmp_cache):
        main(["characterize", "--cell", "6t", "--samples", "2000"])
        capsys.readouterr()
        assert main(["cache", "clear", "--namespace", "cell"]) == 0
        assert "removed 1 cache entries" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert main(["cache", "stats"]) == 0
        assert "entries   : 0" in capsys.readouterr().out
