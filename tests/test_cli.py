"""Tests of the command-line interface (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for cmd in ("characterize", "scaling", "hybrid", "sensitivity",
                    "allocate"):
            args = parser.parse_args([cmd] if cmd != "allocate"
                                     else [cmd, "--max-drop", "2"])
            assert args.command == cmd

    def test_unknown_technology_fails_cleanly(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown technology"):
            main(["characterize", "--tech", "ptm3000", "--samples", "2000"])


class TestCharacterizeCommand:
    def test_characterize_prints_table(self, capsys, tmp_cache):
        exit_code = main(["characterize", "--cell", "6t", "--samples", "2000"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "P(read acc)" in out
        assert "0.95" in out
        assert "um^2" in out

    def test_characterize_8t(self, capsys, tmp_cache):
        exit_code = main(["characterize", "--cell", "8t", "--samples", "2000"])
        assert exit_code == 0
        assert "8T cell" in capsys.readouterr().out
