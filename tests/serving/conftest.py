"""Session fixtures for the serving suite.

Deliberately the *same* model/table parameters as ``tests/core`` so the
two suites share every on-disk cache entry (trained weights, per-point
characterizations): a full-suite run trains once and characterizes
once, however the suites are ordered.
"""

import pytest

from repro.core import CircuitToSystemSimulator, train_benchmark_ann
from repro.mem import CellTables


@pytest.fixture(scope="session")
def serving_model():
    return train_benchmark_ann(
        profile="fast", seed=0, n_train=4000, n_val=400, n_test=1000, epochs=10
    )


@pytest.fixture(scope="session")
def serving_tables(tech):
    return CellTables.build(technology=tech, n_samples=8000)


@pytest.fixture(scope="session")
def serving_sim(serving_model, serving_tables):
    return CircuitToSystemSimulator(
        serving_model, tables=serving_tables, n_trials=3
    )
