"""Tests of the JSON-lines protocol over stdio and TCP."""

import asyncio
import io
import json

import pytest

from repro.serving import (
    BatchingEvaluator,
    EvalRequest,
    respond_lines,
    run_stdio,
    sequential_response,
    serve_tcp,
)
from repro.serving.server import STREAM_LIMIT


def line(**payload) -> str:
    return json.dumps(payload)


def canon(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestRespondLines:
    def test_responses_in_request_order_with_id_echo(self, serving_sim):
        lines = [
            line(config="base", vdd=0.70, id="first"),
            line(config="config1", vdd=0.65, msb_in_8t=3, id="second"),
            line(config="base", vdd=0.70, id="third"),  # repeat of "first"
        ]

        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.01)
            out = await respond_lines(evaluator, lines)
            await evaluator.close()
            return evaluator, out

        evaluator, out = asyncio.run(run())
        decoded = [json.loads(o) for o in out]
        assert [d["id"] for d in decoded] == ["first", "second", "third"]
        assert all(d["ok"] for d in decoded)
        # The repeat shares the leader's evaluation but gets its own line.
        assert decoded[0]["result"] == decoded[2]["result"]
        assert evaluator.stats.evaluations == 2

        reference = sequential_response(
            serving_sim, EvalRequest(config="base", vdd=0.70)
        )
        assert canon(decoded[0]["result"]) == canon(reference)

    def test_blank_lines_skipped_and_errors_inline(self, serving_sim):
        lines = [
            "",
            "   ",
            "{broken",
            line(config="base", vdd=99.0, id="hot"),
            line(config="nope", vdd=0.7, id="bad-config"),
            line(config="base", vdd=0.70, id="ok"),
        ]

        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.0)
            out = await respond_lines(evaluator, lines)
            await evaluator.close()
            return out

        decoded = [json.loads(o) for o in asyncio.run(run())]
        assert len(decoded) == 4  # blanks dropped
        assert decoded[0]["ok"] is False and decoded[0]["id"] is None
        assert "not valid JSON" in decoded[0]["error"]
        assert decoded[1]["ok"] is False and decoded[1]["id"] == "hot"
        assert "outside characterized range" in decoded[1]["error"]
        assert decoded[2]["ok"] is False and decoded[2]["id"] == "bad-config"
        assert decoded[3]["ok"] is True and decoded[3]["id"] == "ok"

    def test_bad_seed_fails_alone_without_killing_the_batch(self, serving_sim):
        lines = [
            line(config="base", vdd=0.70, seed=-5, id="negative"),
            line(config="base", vdd=0.70, id="fine"),
        ]

        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.0)
            out = await respond_lines(evaluator, lines)
            await evaluator.close()
            return out

        decoded = [json.loads(o) for o in asyncio.run(run())]
        assert decoded[0]["ok"] is False and decoded[0]["id"] == "negative"
        assert "non-negative" in decoded[0]["error"]
        assert decoded[1]["ok"] is True and decoded[1]["id"] == "fine"

    def test_unexpected_failure_is_answered_not_propagated(self, serving_sim):
        """A programming error behind one request must come back as an
        inline internal-error response, not kill the server loop."""

        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.0)

            async def exploding_submit(request):
                raise RuntimeError("wires crossed")

            evaluator.submit = exploding_submit
            out = await respond_lines(
                evaluator, [line(config="base", vdd=0.70, id="boom")]
            )
            await evaluator.close()
            return out

        (response,) = [json.loads(o) for o in asyncio.run(run())]
        assert response["ok"] is False and response["id"] == "boom"
        assert response["error"] == "internal error (RuntimeError)"


class TestStdio:
    def test_stdin_stdout_exchange(self, serving_sim):
        stdin = io.StringIO(
            line(config="base", vdd=0.70, id="a") + "\n"
            + line(config="base", vdd=0.70, id="b") + "\n"
        )
        stdout = io.StringIO()
        evaluator = BatchingEvaluator(serving_sim, cache=None, batch_window=0.0)
        code = run_stdio(evaluator, stdin=stdin, stdout=stdout)
        assert code == 0
        decoded = [json.loads(l) for l in stdout.getvalue().splitlines()]
        assert [d["id"] for d in decoded] == ["a", "b"]
        assert decoded[0]["result"] == decoded[1]["result"]
        assert evaluator.stats.evaluations == 1  # the pair coalesced


class TestStatsRequest:
    def test_stats_control_line(self, serving_sim):
        """A ``{"type": "stats"}`` line returns the live counters and is
        not itself counted as a request."""
        lines = [
            line(config="base", vdd=0.70, id="warm"),
            line(type="stats", id="probe"),
        ]

        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.0)
            # Sequential submission so the probe observes the request.
            first = await respond_lines(evaluator, lines[:1])
            probe = await respond_lines(evaluator, lines[1:])
            await evaluator.close()
            return first + probe

        decoded = [json.loads(o) for o in asyncio.run(run())]
        assert decoded[0]["ok"] is True
        stats = decoded[1]
        assert stats["ok"] is True and stats["id"] == "probe"
        assert stats["type"] == "stats"
        assert stats["stats"]["requests"] == 1
        assert stats["stats"]["evaluations"] == 1

    def test_unknown_control_type_rejected(self, serving_sim):
        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.0)
            out = await respond_lines(
                evaluator, [line(type="reboot", id="nope")]
            )
            await evaluator.close()
            return out

        (response,) = [json.loads(o) for o in asyncio.run(run())]
        assert response["ok"] is False and response["id"] == "nope"
        assert response["code"] == "bad_request"
        assert "unknown control type" in response["error"]

    def test_error_responses_carry_codes(self, serving_sim):
        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.0)
            out = await respond_lines(
                evaluator, ["{broken", line(config="nope", vdd=0.7)]
            )
            await evaluator.close()
            return out

        decoded = [json.loads(o) for o in asyncio.run(run())]
        assert [d["code"] for d in decoded] == ["bad_request", "bad_request"]

    def test_probe_helper_against_tcp_server(self, serving_sim):
        from repro.serving.server import request_stats

        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.0)
            server = await serve_tcp(evaluator, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            # The blocking socket client must not share this loop.
            stats = await asyncio.get_running_loop().run_in_executor(
                None, request_stats, "127.0.0.1", port
            )
            server.close()
            await server.wait_closed()
            await evaluator.close()
            return stats

        stats = asyncio.run(run())
        assert stats["requests"] == 0
        assert set(stats) >= {"requests", "cache_hits", "coalesced",
                              "batches", "evaluations", "errors"}


class _GatedEvaluator:
    """Stub evaluator whose submissions block until the test releases
    them — deterministic in-flight pressure for backpressure tests."""

    def __init__(self):
        from repro.serving import ServingStats

        self.stats = ServingStats()
        self.gate = asyncio.Event()

    async def submit(self, request):
        self.stats.requests += 1
        await self.gate.wait()
        self.stats.evaluations += 1
        return {"vdd": request.vdd}

    async def close(self):
        pass


class TestBackpressure:
    def test_overloaded_response_when_inflight_bound_hit(self):
        """With max_inflight=1, a pipelined burst gets one answer and
        structured 'overloaded' refusals for the rest — and the
        connection keeps working afterwards."""

        async def run():
            evaluator = _GatedEvaluator()
            server = await serve_tcp(
                evaluator, host="127.0.0.1", port=0, max_inflight=1
            )
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            burst = [line(config="base", vdd=0.70, id=f"r{i}") for i in range(3)]
            writer.write(("\n".join(burst) + "\n").encode())
            await writer.drain()
            # Two refusals arrive while r0 is gated.
            refused = [
                json.loads(await asyncio.wait_for(reader.readline(), 30))
                for _ in range(2)
            ]
            evaluator.gate.set()
            answered = json.loads(
                await asyncio.wait_for(reader.readline(), 30)
            )
            # The connection survived: a post-burst request succeeds.
            writer.write((line(config="base", vdd=0.75, id="later") + "\n").encode())
            await writer.drain()
            later = json.loads(await asyncio.wait_for(reader.readline(), 30))
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            return refused, answered, later

        refused, answered, later = asyncio.run(run())
        assert [r["ok"] for r in refused] == [False, False]
        assert {r["code"] for r in refused} == {"overloaded"}
        assert {r["id"] for r in refused} == {"r1", "r2"}
        assert all("overloaded" in r["error"] for r in refused)
        assert answered["ok"] is True and answered["id"] == "r0"
        assert later["ok"] is True and later["id"] == "later"

    def test_max_inflight_validation(self):
        async def run():
            with pytest.raises(ValueError, match="max_inflight"):
                await serve_tcp(_GatedEvaluator(), max_inflight=0)

        asyncio.run(run())


class TestTcp:
    def test_multiplexed_connection(self, serving_sim):
        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.01)
            server = await serve_tcp(evaluator, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            requests = [
                line(config="base", vdd=0.70, id=f"r{i}") for i in range(6)
            ] + ["", line(config="config1", vdd=0.65, msb_in_8t=3, id="r6")]
            writer.write(("\n".join(requests) + "\n").encode())
            await writer.drain()
            writer.write_eof()
            received = []
            while len(received) < 7:
                raw = await asyncio.wait_for(reader.readline(), timeout=30)
                assert raw, "server closed before answering everything"
                received.append(json.loads(raw))
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await evaluator.close()
            return evaluator, received

        evaluator, received = asyncio.run(run())
        assert {d["id"] for d in received} == {f"r{i}" for i in range(7)}
        assert all(d["ok"] for d in received)
        # 7 requests over the wire, only 2 distinct evaluations.
        assert evaluator.stats.evaluations == 2
        assert evaluator.stats.coalesced == 5

    def test_oversized_line_answered_inline_then_closed(self, serving_sim):
        """A line the stream buffer cannot hold is a protocol violation:
        the client gets an inline error, not a silent hangup."""

        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.0)
            server = await serve_tcp(evaluator, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"x" * (STREAM_LIMIT + 4096) + b"\n")
            response = json.loads(
                await asyncio.wait_for(reader.readline(), timeout=30)
            )
            eof = await asyncio.wait_for(reader.readline(), timeout=30)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # server already tore the stream down
            server.close()
            await server.wait_closed()
            await evaluator.close()
            return response, eof

        response, eof = asyncio.run(run())
        assert response["ok"] is False
        assert "exceeds" in response["error"]
        assert eof == b""  # the connection was closed after the error
