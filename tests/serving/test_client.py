"""Tests of the resilient JSON-lines client.

The peer here is a *scripted* threaded TCP server: each accepted
connection consumes the next session script, so tests can produce the
exact failure shapes — mid-request EOF, malformed lines, ``overloaded``
refusals with and without hints — deterministically, with injected
``sleep``/``rng`` so nothing actually waits.
"""

import json
import socket
import threading

import pytest

from repro.serving.client import ClientError, ResilientClient


class ScriptedServer:
    """Serves a fixed sequence of scripted sessions on one port.

    Each session is a list of actions, one per received request line:
    a dict is sent back as a JSON response line, the string ``"close"``
    severs the connection without responding (the restart shape), and
    any other string is sent verbatim (malformed-response shapes).
    When a session's actions run out, the connection closes.
    """

    def __init__(self, sessions):
        self.sessions = [list(session) for session in sessions]
        self.requests = []
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen()
        self.host, self.port = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._thread.join(timeout=10)
        self._listener.close()
        assert not self._thread.is_alive(), "scripted server hung"

    def _serve(self):
        for session in self.sessions:
            conn, _ = self._listener.accept()
            stream = conn.makefile("r", encoding="utf-8")
            try:
                for action in session:
                    line = stream.readline()
                    if not line:
                        break
                    self.requests.append(json.loads(line))
                    if action == "close":
                        break
                    if isinstance(action, str):
                        conn.sendall(action.encode())
                    else:
                        conn.sendall((json.dumps(action) + "\n").encode())
            except OSError:
                pass
            finally:
                stream.close()
                conn.close()


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def make_client(server, **kwargs):
    kwargs.setdefault("sleep", lambda delay: None)
    return ResilientClient(server.host, server.port, **kwargs)


class TestRoundTrip:
    def test_persistent_connection_across_requests(self):
        with ScriptedServer([[{"ok": True, "n": 1}, {"ok": True, "n": 2}]]) as s:
            with make_client(s) as client:
                assert client.request({"type": "ping"})["n"] == 1
                assert client.request({"type": "ping"})["n"] == 2
                assert client.connects == 1 and client.reconnects == 0
        assert [r["type"] for r in s.requests] == ["ping", "ping"]

    def test_non_ok_responses_are_returned_not_raised(self):
        """Application-level refusals belong to the caller; only
        transport and protocol failures are the client's business."""
        refusal = {"ok": False, "code": "bad_request", "error": "nope"}
        with ScriptedServer([[refusal]]) as s:
            with make_client(s) as client:
                assert client.request({"type": "junk"}) == refusal

    def test_close_then_reuse_redials(self):
        with ScriptedServer([[{"ok": True}], [{"ok": True}]]) as s:
            client = make_client(s)
            client.request({})
            client.close()
            client.request({})
            assert client.connects == 2 and client.reconnects == 1


class TestReconnect:
    def test_server_restart_is_transparent(self):
        """The peer closes the connection between requests (a server
        restart): the next request re-dials and succeeds within its
        attempt budget."""
        with ScriptedServer([[{"ok": True, "n": 1}], [{"ok": True, "n": 2}]]) as s:
            with make_client(s) as client:
                assert client.request({})["n"] == 1
                assert client.request({})["n"] == 2
                assert client.reconnects == 1
                assert client.retries == 1

    def test_eof_exhausts_the_attempt_budget(self):
        with ScriptedServer([["close"], ["close"]]) as s:
            with make_client(s, max_attempts=2) as client:
                with pytest.raises(ClientError, match="no response"):
                    client.request({})
                assert client.retries == 1

    def test_unreachable_server_fails_after_max_attempts(self):
        client = ResilientClient(
            "127.0.0.1", free_port(), max_attempts=3, sleep=lambda d: None
        )
        with pytest.raises(ClientError, match="cannot reach"):
            client.request({})
        assert client.retries == 2 and client.connects == 0

    def test_fail_fast_mode_never_retries(self):
        client = ResilientClient(
            "127.0.0.1", free_port(), max_attempts=1, sleep=lambda d: None
        )
        with pytest.raises(ClientError, match="cannot reach"):
            client.request({})
        assert client.retries == 0

    def test_backoff_is_jittered_exponential_and_capped(self):
        sleeps = []
        client = ResilientClient(
            "127.0.0.1", free_port(), max_attempts=6,
            backoff=0.2, backoff_cap=0.5,
            sleep=sleeps.append, rng=lambda: 0.5,
        )
        with pytest.raises(ClientError, match="cannot reach"):
            client.request({})
        assert sleeps == [0.2, 0.4, 0.5, 0.5, 0.5]


class TestDeadline:
    def test_deadline_bounds_endless_redialling(self):
        client = ResilientClient(
            "127.0.0.1", free_port(), timeout=0.2,
            max_attempts=10**9, backoff=0.0, sleep=lambda d: None,
        )
        with pytest.raises(ClientError, match="deadline of 0.2s"):
            client.request({})

    def test_nonpositive_timeouts_rejected(self):
        with pytest.raises(ClientError, match="timeout must be positive"):
            ResilientClient("h", 1, timeout=0.0)
        client = ResilientClient("h", 1)
        with pytest.raises(ClientError, match="timeout must be positive"):
            client.request({}, timeout=-1.0)

    def test_attempt_budget_validated(self):
        with pytest.raises(ClientError, match="max_attempts"):
            ResilientClient("h", 1, max_attempts=0)


class TestBackpressure:
    def test_overloaded_waits_the_hinted_interval_and_resends(self):
        sleeps = []
        sessions = [[
            {"ok": False, "code": "overloaded", "retry_after": 0.05},
            {"ok": True, "done": True},
        ]]
        with ScriptedServer(sessions) as s:
            client = make_client(s, sleep=sleeps.append)
            assert client.request({"type": "work"})["done"] is True
            assert client.overloaded_waits == 1
            assert client.retries == 0  # backpressure is not a failure
            assert sleeps == [0.05]
        assert len(s.requests) == 2  # the request was resent verbatim

    @pytest.mark.parametrize("hint", [None, "soon", -1, True])
    def test_unusable_hints_fall_back_to_the_default_delay(self, hint):
        sleeps = []
        refusal = {"ok": False, "code": "overloaded"}
        if hint is not None:
            refusal["retry_after"] = hint
        with ScriptedServer([[refusal, {"ok": True}]]) as s:
            client = make_client(s, overloaded_delay=0.123, sleep=sleeps.append)
            assert client.request({})["ok"] is True
            assert sleeps == [0.123]


class TestProtocolViolations:
    def test_malformed_line_raises_without_retry(self):
        with ScriptedServer([["not json at all\n"]]) as s:
            with make_client(s, max_attempts=5) as client:
                with pytest.raises(ClientError, match="malformed response"):
                    client.request({})
                assert client.retries == 0

    def test_non_object_response_raises(self):
        with ScriptedServer([["[1, 2]\n"]]) as s:
            with make_client(s) as client:
                with pytest.raises(ClientError, match="JSON object"):
                    client.request({})


class TestStats:
    def test_stats_unwraps_the_probe_response(self):
        payload = {"ok": True, "stats": {"jobs": 3, "completed": 3}}
        with ScriptedServer([[payload]]) as s:
            with make_client(s) as client:
                assert client.stats() == {"jobs": 3, "completed": 3}
        assert s.requests == [{"type": "stats"}]

    def test_refused_probe_raises(self):
        with ScriptedServer([[{"ok": False, "error": "draining"}]]) as s:
            with make_client(s) as client:
                with pytest.raises(ClientError, match="refused: draining"):
                    client.stats()

    def test_shapeless_stats_raises(self):
        with ScriptedServer([[{"ok": True, "stats": [1, 2]}]]) as s:
            with make_client(s) as client:
                with pytest.raises(ClientError, match="'stats' object"):
                    client.stats()

    def test_watch_stats_yields_on_the_injected_interval(self):
        sleeps = []
        responses = [{"ok": True, "stats": {"n": i}} for i in range(3)]
        with ScriptedServer([responses]) as s:
            client = make_client(s, sleep=sleeps.append)
            snapshots = list(client.watch_stats(interval=0.5, iterations=3))
            assert [snap["n"] for snap in snapshots] == [0, 1, 2]
            assert sleeps == [0.5, 0.5]  # no pause after the last one

    def test_watch_interval_validated(self):
        client = ResilientClient("h", 1)
        with pytest.raises(ClientError, match="interval"):
            next(client.watch_stats(interval=0.0))

    def test_request_stats_helper_is_a_fail_fast_probe(self):
        """``request_stats`` rides the client with ``max_attempts=1``:
        probes must answer now or fail now (autoscalers poll on a
        schedule and treat a miss as 'down', not 'wait')."""
        from repro.serving.server import request_stats

        with ScriptedServer([[{"ok": True, "stats": {"jobs": 1}}]]) as s:
            assert request_stats(s.host, s.port) == {"jobs": 1}
        with pytest.raises(ClientError):
            request_stats("127.0.0.1", free_port(), timeout=0.5)
