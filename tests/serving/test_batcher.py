"""End-to-end tests of the batching/deduplicating serving front-end.

The acceptance bar of the serving layer, exercised here: a burst of
concurrent identical-and-distinct requests coalesces into fewer
fault-injection passes than requests, while every response stays
byte-identical to the sequential ``CircuitToSystemSimulator`` answer.
"""

import asyncio
import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime import ResultCache
from repro.serving import BatchingEvaluator, EvalRequest, sequential_response


def canon(payload) -> str:
    """Canonical response bytes (the unit of the byte-identity contract)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def submit_all(evaluator, requests):
    """Submit every request concurrently on one event loop."""

    async def run():
        responses = await asyncio.gather(
            *(evaluator.submit(r) for r in requests), return_exceptions=True
        )
        await evaluator.close()
        return list(responses)

    return asyncio.run(run())


#: Four distinct evaluations covering every configuration family.
DISTINCT = (
    EvalRequest(config="base", vdd=0.70),
    EvalRequest(config="base", vdd=0.80, seed=7),
    EvalRequest(config="config1", vdd=0.65, msb_in_8t=3),
    EvalRequest(config="config2", vdd=0.65, msb_per_layer=(2, 3, 1, 1, 3)),
)


@pytest.fixture(scope="module")
def reference(serving_sim):
    """Sequential oracle responses, canonicalized, keyed by request."""
    return {
        req: canon(sequential_response(serving_sim, req)) for req in DISTINCT
    }


class TestEndToEndCoalescing:
    def test_concurrent_burst_coalesces_and_matches_sequential(
        self, serving_sim, reference
    ):
        # >= 8 concurrent requests: every distinct one repeated, plus a
        # repeat that differs only by transport id.
        burst = list(DISTINCT) * 2 + [
            EvalRequest(config="base", vdd=0.70, request_id="tagged"),
            EvalRequest(config="config1", vdd=0.65, msb_in_8t=3,
                        request_id="tagged-2"),
        ]
        assert len(burst) >= 8

        evaluator = BatchingEvaluator(serving_sim, cache=None,
                                      batch_window=0.01, max_batch=64)
        responses = submit_all(evaluator, burst)

        # Fewer fault-injection passes than requests: one per distinct
        # evaluation, with every repeat coalesced onto it.
        assert evaluator.stats.requests == len(burst)
        assert evaluator.stats.evaluations == len(DISTINCT)
        assert evaluator.stats.evaluations < len(burst)
        assert evaluator.stats.coalesced == len(burst) - len(DISTINCT)
        assert evaluator.stats.batches == 1

        # Byte-identity against the sequential path, repeat by repeat.
        for request, response in zip(burst, responses):
            key = EvalRequest(
                config=request.config, vdd=request.vdd,
                msb_in_8t=request.msb_in_8t,
                msb_per_layer=request.msb_per_layer,
                n_trials=request.n_trials, seed=request.seed,
            )
            assert canon(response) == reference[key]

    def test_max_batch_splits_flushes_without_changing_bytes(
        self, serving_sim, reference
    ):
        evaluator = BatchingEvaluator(serving_sim, cache=None,
                                      batch_window=0.2, max_batch=2)
        responses = submit_all(evaluator, list(DISTINCT))
        assert evaluator.stats.batches == 2  # 4 distinct / max_batch 2
        assert evaluator.stats.evaluations == len(DISTINCT)
        for request, response in zip(DISTINCT, responses):
            assert canon(response) == reference[request]

    def test_single_request_batch(self, serving_sim, reference):
        evaluator = BatchingEvaluator(serving_sim, cache=None, batch_window=0.0)
        (response,) = submit_all(evaluator, [DISTINCT[0]])
        assert canon(response) == reference[DISTINCT[0]]
        assert evaluator.stats.evaluations == 1


class TestResponseCache:
    def test_cache_serves_repeats_across_evaluators(
        self, serving_sim, reference, tmp_path
    ):
        cache_dir = str(tmp_path / "serve-cache")
        first = BatchingEvaluator(
            serving_sim, cache=ResultCache(cache_dir=cache_dir), batch_window=0.0
        )
        cold = submit_all(first, list(DISTINCT))
        assert first.stats.evaluations == len(DISTINCT)

        second = BatchingEvaluator(
            serving_sim, cache=ResultCache(cache_dir=cache_dir), batch_window=0.0
        )
        warm = submit_all(second, list(DISTINCT))
        assert second.stats.cache_hits == len(DISTINCT)
        assert second.stats.evaluations == 0
        assert second.stats.batches == 0

        # The cached bytes are the computed bytes are the sequential bytes.
        for request, a, b in zip(DISTINCT, cold, warm):
            assert canon(a) == canon(b) == reference[request]

    def test_unwritable_response_store_degrades_not_hangs(
        self, serving_sim, reference, tmp_path
    ):
        """A store that cannot be written (full disk, permissions) must
        cost only the caching, never strand a claimed future."""
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupies the cache path")
        evaluator = BatchingEvaluator(
            serving_sim, cache=ResultCache(cache_dir=str(blocker)),
            batch_window=0.0,
        )
        responses = submit_all(evaluator, list(DISTINCT[:2]))
        assert evaluator.stats.evaluations == 2
        for request, response in zip(DISTINCT[:2], responses):
            assert canon(response) == reference[request]

    def test_disabled_cache_recomputes(self, serving_sim, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path), enabled=False)
        evaluator = BatchingEvaluator(serving_sim, cache=cache, batch_window=0.0)
        submit_all(evaluator, [DISTINCT[0], DISTINCT[0]])
        assert evaluator.stats.cache_hits == 0
        assert evaluator.stats.evaluations == 1  # single-flight still dedupes


class TestErrorHandling:
    def test_bad_request_fails_alone(self, serving_sim, reference):
        out_of_range = EvalRequest(config="base", vdd=5.0)  # > table range
        evaluator = BatchingEvaluator(serving_sim, cache=None, batch_window=0.01)
        responses = submit_all(
            evaluator, [DISTINCT[0], out_of_range, DISTINCT[2]]
        )
        assert canon(responses[0]) == reference[DISTINCT[0]]
        assert isinstance(responses[1], ConfigurationError)
        assert "outside characterized range" in str(responses[1])
        assert canon(responses[2]) == reference[DISTINCT[2]]
        assert evaluator.stats.errors == 1
        assert evaluator.stats.evaluations == 2

    def test_coalesced_duplicates_share_the_failure(self, serving_sim):
        bad = EvalRequest(config="base", vdd=5.0)
        evaluator = BatchingEvaluator(serving_sim, cache=None, batch_window=0.01)
        responses = submit_all(evaluator, [bad, bad, bad])
        assert all(isinstance(r, ConfigurationError) for r in responses)
        assert evaluator.stats.errors == 1  # one failed evaluation, shared
        assert evaluator.stats.coalesced == 2


class TestCancellation:
    def test_cancelled_waiter_does_not_poison_coalesced_peers(
        self, serving_sim, reference
    ):
        """The shared future belongs to the flush task; a waiter that
        gives up (timeout, dropped connection) must not cancel the
        result out from under the peers coalesced onto it."""

        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=0.05)
            leader = asyncio.create_task(evaluator.submit(DISTINCT[0]))
            peer = asyncio.create_task(evaluator.submit(DISTINCT[0]))
            await asyncio.sleep(0)  # both claimed; leader enqueued the work
            leader.cancel()
            response = await peer
            await evaluator.close()
            return evaluator, leader, response

        evaluator, leader, response = asyncio.run(run())
        assert leader.cancelled()
        assert canon(response) == reference[DISTINCT[0]]
        assert evaluator.stats.evaluations == 1


class TestDrain:
    def test_drain_flushes_before_the_window_expires(self, serving_sim, reference):
        """``drain`` must answer pending requests immediately — a
        shutdown path cannot sit out a long batch window."""

        async def run():
            evaluator = BatchingEvaluator(serving_sim, cache=None,
                                          batch_window=30.0)
            tasks = [
                asyncio.create_task(evaluator.submit(r)) for r in DISTINCT[:2]
            ]
            await asyncio.sleep(0)  # let the submits claim and enqueue
            await evaluator.drain()  # well before the 30 s window
            responses = [await t for t in tasks]
            await evaluator.close()
            return evaluator, responses

        evaluator, responses = asyncio.run(run())
        assert evaluator.stats.evaluations == 2
        for request, response in zip(DISTINCT[:2], responses):
            assert canon(response) == reference[request]


class TestConstruction:
    def test_rejects_bad_window_and_batch(self, serving_sim):
        with pytest.raises(ConfigurationError, match="batch_window"):
            BatchingEvaluator(serving_sim, batch_window=-0.1)
        with pytest.raises(ConfigurationError, match="max_batch"):
            BatchingEvaluator(serving_sim, max_batch=0)

    def test_stats_summary_mentions_every_counter(self, serving_sim):
        evaluator = BatchingEvaluator(serving_sim, cache=None, batch_window=0.0)
        submit_all(evaluator, [DISTINCT[0], DISTINCT[0]])
        text = evaluator.stats.summary()
        assert "2 requests" in text
        assert "1 coalesced" in text
        assert "1 evaluated" in text
