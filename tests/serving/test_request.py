"""Tests of the serving request schema: parsing, validation, keying."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.rng import DEFAULT_SEED
from repro.serving import EvalRequest


class TestValidation:
    def test_base_request(self):
        req = EvalRequest(config="base", vdd=0.7)
        assert req.vdd == 0.7
        assert req.n_trials is None and req.seed is None

    def test_config1_requires_msb_in_8t(self):
        EvalRequest(config="config1", vdd=0.65, msb_in_8t=3)
        with pytest.raises(ConfigurationError, match="requires msb_in_8t"):
            EvalRequest(config="config1", vdd=0.65)

    def test_config2_requires_msb_per_layer(self):
        req = EvalRequest(config="config2", vdd=0.65, msb_per_layer=[2, 3, 1])
        assert req.msb_per_layer == (2, 3, 1)
        with pytest.raises(ConfigurationError, match="requires msb_per_layer"):
            EvalRequest(config="config2", vdd=0.65)

    def test_spurious_msb_arguments_rejected(self):
        with pytest.raises(ConfigurationError, match="takes no msb_in_8t"):
            EvalRequest(config="base", vdd=0.7, msb_in_8t=3)
        with pytest.raises(ConfigurationError, match="takes no msb_per_layer"):
            EvalRequest(config="config1", vdd=0.7, msb_in_8t=3,
                        msb_per_layer=(1, 2))

    def test_unknown_config(self):
        with pytest.raises(ConfigurationError, match="unknown config"):
            EvalRequest(config="config9", vdd=0.7)

    @pytest.mark.parametrize("vdd", [0.0, -1.0, "0.7", True])
    def test_bad_vdd(self, vdd):
        with pytest.raises(ConfigurationError):
            EvalRequest(config="base", vdd=vdd)

    @pytest.mark.parametrize("n_trials", [0, -2, 1.5, True])
    def test_bad_n_trials(self, n_trials):
        with pytest.raises(ConfigurationError):
            EvalRequest(config="base", vdd=0.7, n_trials=n_trials)

    @pytest.mark.parametrize("seed", [1.5, "7", True, -1, -5])
    def test_bad_seed(self, seed):
        with pytest.raises(ConfigurationError):
            EvalRequest(config="base", vdd=0.7, seed=seed)

    def test_n_trials_ceiling(self):
        from repro.serving.request import MAX_TRIALS

        EvalRequest(config="base", vdd=0.7, n_trials=MAX_TRIALS)
        with pytest.raises(ConfigurationError, match="must not exceed"):
            EvalRequest(config="base", vdd=0.7, n_trials=MAX_TRIALS + 1)

    def test_bad_msb_per_layer_shapes(self):
        with pytest.raises(ConfigurationError):
            EvalRequest(config="config2", vdd=0.7, msb_per_layer=3)
        with pytest.raises(ConfigurationError):
            EvalRequest(config="config2", vdd=0.7, msb_per_layer=[1, 2.5])


class TestCanonicalization:
    def test_resolved_pins_defaults(self):
        req = EvalRequest(config="base", vdd=0.7).resolved(5)
        assert req.n_trials == 5
        assert req.seed == DEFAULT_SEED

    def test_resolved_preserves_explicit_values(self):
        req = EvalRequest(config="base", vdd=0.7, n_trials=2, seed=9).resolved(5)
        assert req.n_trials == 2 and req.seed == 9

    def test_key_payload_requires_resolution(self):
        with pytest.raises(ConfigurationError, match="resolved"):
            EvalRequest(config="base", vdd=0.7).key_payload()

    def test_key_payload_excludes_id(self):
        a = EvalRequest(config="base", vdd=0.7, request_id="a").resolved(3)
        b = EvalRequest(config="base", vdd=0.7, request_id="b").resolved(3)
        assert a.key_payload() == b.key_payload()
        assert "id" not in a.key_payload()

    def test_explicit_default_seed_and_null_seed_share_a_key(self):
        explicit = EvalRequest(config="base", vdd=0.7, seed=DEFAULT_SEED)
        implicit = EvalRequest(config="base", vdd=0.7)
        assert explicit.resolved(3).key_payload() == implicit.resolved(3).key_payload()

    def test_key_payload_is_json_stable(self):
        req = EvalRequest(
            config="config2", vdd=0.65, msb_per_layer=(2, 3, 1, 1, 3), seed=4
        ).resolved(3)
        blob = json.dumps(req.key_payload(), sort_keys=True)
        assert json.loads(blob) == req.key_payload()


class TestWireParsing:
    def test_round_trip(self):
        line = json.dumps(
            {"config": "config1", "vdd": 0.65, "msb_in_8t": 3, "id": "r1",
             "n_trials": 2, "seed": 11}
        )
        req = EvalRequest.from_json_line(line)
        assert req.request_id == "r1"
        assert req.msb_in_8t == 3 and req.n_trials == 2 and req.seed == 11

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown request fields"):
            EvalRequest.from_dict({"config": "base", "vdd": 0.7, "vddd": 1})

    def test_missing_required_fields(self):
        with pytest.raises(ConfigurationError, match="config.*vdd|'config' and 'vdd'"):
            EvalRequest.from_dict({"config": "base"})

    def test_non_object_line(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            EvalRequest.from_json_line("[1, 2]")

    def test_invalid_json_line(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            EvalRequest.from_json_line("{nope")

    def test_non_string_id(self):
        with pytest.raises(ConfigurationError, match="id must be a string"):
            EvalRequest.from_dict({"config": "base", "vdd": 0.7, "id": 4})
