"""Snapshot of the ``stats`` probe rendering (``format_stats``).

Floats display at 6 significant digits — an accumulated latency sum of
``0.30000000000000004`` is float noise, not information — while the
JSON payload the probe returns keeps exact values.  The full rendering
is pinned as a snapshot so an accidental formatting change (ordering,
indentation, precision) is a visible diff, not a silent drift.
"""

from repro.serving.server import _format_value, format_stats

PROBE = {
    "stats_version": 1,
    "requests": 100,
    "cache_hits": 40,
    "hit_rate": 0.4000000000000001,
    "latency_sum": 0.30000000000000004,
    "wait_max": 1.2345678901,
    "store": {
        "store": "memory:lru",
        "hits": 40,
        "get_seconds": 0.10000000000000002,
    },
    "queues": {
        "depth": 3,
        "per_kind": {"margin_tally": 2},
    },
}

SNAPSHOT = """\
cache_hits    : 40
hit_rate      : 0.4
latency_sum   : 0.3
requests      : 100
stats_version : 1
wait_max      : 1.23457
queues:
  depth : 3
  per_kind:
    margin_tally : 2
store:
  get_seconds : 0.1
  hits        : 40
  store       : memory:lru"""


class TestFormatValue:
    def test_floats_render_at_six_significant_digits(self):
        assert _format_value(0.30000000000000004) == "0.3"
        assert _format_value(1.2345678901) == "1.23457"
        assert _format_value(123456789.0) == "1.23457e+08"
        assert _format_value(0.000012345678) == "1.23457e-05"

    def test_non_floats_pass_through_exactly(self):
        assert _format_value(3) == "3"
        assert _format_value(True) == "True"
        assert _format_value("memory:lru") == "memory:lru"
        # Counters on the wire are ints; 3 must never display as 3.0.
        assert "." not in _format_value(10**9)

    def test_display_only_the_payload_keeps_exact_values(self):
        stats = {"latency_sum": 0.30000000000000004}
        format_stats(stats)
        assert stats["latency_sum"] == 0.30000000000000004


class TestFormatStatsSnapshot:
    def test_probe_rendering_is_pinned(self):
        assert format_stats(PROBE) == SNAPSHOT

    def test_rendering_is_order_independent(self):
        shuffled = dict(reversed(list(PROBE.items())))
        assert format_stats(shuffled) == SNAPSHOT

    def test_empty_stats_render_empty(self):
        assert format_stats({}) == ""
