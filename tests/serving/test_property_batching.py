"""Property test: batch composition never changes a response byte.

Seeded-random parametrization (the async driver makes hypothesis's
shrinking machinery more trouble than it is worth here): each round
draws a random multiset of requests, a random batch window and a
random ``max_batch`` from a fixed-seed generator, submits the burst
concurrently, and checks every response against the sequential oracle
— plus the structural invariant that exactly one fault-injection pass
ran per distinct request.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serving import BatchingEvaluator, EvalRequest, sequential_response

#: The request pool the random bursts draw from.
POOL = (
    EvalRequest(config="base", vdd=0.70),
    EvalRequest(config="base", vdd=0.75),
    EvalRequest(config="base", vdd=0.70, seed=11),
    EvalRequest(config="base", vdd=0.70, n_trials=2),
    EvalRequest(config="config1", vdd=0.65, msb_in_8t=3),
    EvalRequest(config="config1", vdd=0.65, msb_in_8t=5),
    EvalRequest(config="config2", vdd=0.65, msb_per_layer=(2, 3, 1, 1, 3)),
)

ROUNDS = 6


def canon(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.fixture(scope="module")
def oracle(serving_sim):
    """Sequential reference bytes for every pool entry (computed once)."""
    return [canon(sequential_response(serving_sim, req)) for req in POOL]


def _random_layouts():
    rng = np.random.default_rng(20160314)
    layouts = []
    for _ in range(ROUNDS):
        size = int(rng.integers(5, 13))
        picks = rng.integers(0, len(POOL), size=size)
        window = float(rng.choice((0.0, 0.002, 0.01)))
        max_batch = int(rng.integers(1, 9))
        layouts.append((tuple(int(p) for p in picks), window, max_batch))
    return layouts


@pytest.mark.parametrize(
    "picks,window,max_batch",
    _random_layouts(),
    ids=[f"round{i}" for i in range(ROUNDS)],
)
def test_random_batch_composition_is_invisible(
    serving_sim, oracle, picks, window, max_batch
):
    burst = [POOL[p] for p in picks]

    async def run():
        evaluator = BatchingEvaluator(
            serving_sim, cache=None, batch_window=window, max_batch=max_batch
        )
        responses = await asyncio.gather(*(evaluator.submit(r) for r in burst))
        await evaluator.close()
        return evaluator, list(responses)

    evaluator, responses = asyncio.run(run())

    # Byte-identity, request by request, whatever the layout did.
    for pick, response in zip(picks, responses):
        assert canon(response) == oracle[pick], (
            f"layout (window={window}, max_batch={max_batch}) changed "
            f"the response of pool entry {pick}"
        )

    # Exactly one fault-injection pass per *distinct* request: the
    # whole burst is claimed before any flush task runs, so repeats
    # always attach to the leader regardless of window or max_batch.
    distinct = len(set(picks))
    assert evaluator.stats.evaluations == distinct
    assert evaluator.stats.coalesced == len(picks) - distinct
    if len(picks) > distinct:
        assert evaluator.stats.evaluations < evaluator.stats.requests
