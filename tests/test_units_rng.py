"""Tests of the unit helpers and deterministic RNG utilities."""

import numpy as np
import pytest

from repro import units
from repro.rng import DEFAULT_SEED, derive_seed, ensure_rng, spawn


class TestUnits:
    def test_conversions(self):
        assert units.mV(250) == pytest.approx(0.250)
        assert units.uA(44) == pytest.approx(44e-6)
        assert units.nA(3) == pytest.approx(3e-9)
        assert units.pA(7) == pytest.approx(7e-12)
        assert units.uW(9) == pytest.approx(9e-6)
        assert units.nW(2) == pytest.approx(2e-9)
        assert units.ns(1.5) == pytest.approx(1.5e-9)
        assert units.ps(300) == pytest.approx(3e-10)
        assert units.nm(22) == pytest.approx(22e-9)
        assert units.um(0.5) == pytest.approx(5e-7)
        assert units.fF(80) == pytest.approx(8e-14)
        assert units.aF(50) == pytest.approx(5e-17)

    def test_format_si_picks_prefix(self):
        assert units.format_si(2.1e-6, "W") == "2.1 uW"
        assert units.format_si(4.4e-8, "A") == "44 nA"
        assert units.format_si(1.5e3, "Hz") == "1.5 kHz"
        assert units.format_si(0.25, "V") == "250 mV"

    def test_format_si_edge_cases(self):
        assert units.format_si(0.0, "W") == "0 W"
        assert "nan" in units.format_si(float("nan"), "W")
        assert "inf" in units.format_si(float("inf"), "W")

    def test_format_si_digits(self):
        assert units.format_si(1.23456e-6, "W", digits=5) == "1.2346 uW"


class TestRng:
    def test_none_maps_to_default_seed(self):
        a = ensure_rng(None).integers(0, 1 << 30, 8)
        b = ensure_rng(DEFAULT_SEED).integers(0, 1 << 30, 8)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(5)
        assert ensure_rng(gen) is gen

    def test_int_seed_deterministic(self):
        np.testing.assert_array_equal(
            ensure_rng(7).integers(0, 100, 5), ensure_rng(7).integers(0, 100, 5)
        )

    def test_spawn_produces_independent_streams(self):
        children = spawn(ensure_rng(1), 3)
        draws = [c.integers(0, 1 << 30, 4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(1), -1)

    def test_derive_seed_stable_and_order_sensitive(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)
        assert derive_seed(1, 2) != derive_seed(1, 2, 0)

    def test_derive_seed_skips_none_components(self):
        assert derive_seed(1, None, 2) == derive_seed(1, 2)

    def test_derive_seed_from_none_base(self):
        assert derive_seed(None, 1) == derive_seed(DEFAULT_SEED, 1)
