"""Fixtures and scripted peers for the distributed-dispatcher suite.

The suite runs everything over real localhost TCP: dispatchers on their
daemon-thread event loop, genuine :class:`~repro.distributed.Worker`
instances on side threads, and *scripted* fake workers (raw JSON-lines
clients) wherever a test needs a peer that misbehaves deterministically
— goes silent mid-shard, drops the connection, fails every job.
"""

import asyncio
import json
import threading

import pytest

from repro.distributed import DirectoryStore, ShardDispatcher, Worker
from repro.sram.montecarlo import MonteCarloAnalyzer

#: Small, fast population: 1200 samples in 256-sample blocks = 5 blocks,
#: so a 3-shard plan exercises uneven (2/2/1-block) shards.
N_SAMPLES = 1200
BLOCK_SAMPLES = 256

#: Tight liveness so dead-worker tests resolve in well under a second.
HEARTBEAT_INTERVAL = 0.1
HEARTBEAT_TIMEOUT = 0.4


@pytest.fixture()
def dist_analyzer(cell6):
    return MonteCarloAnalyzer(
        cell=cell6, n_samples=N_SAMPLES, block_samples=BLOCK_SAMPLES
    )


@pytest.fixture()
def store_dir(tmp_path):
    return str(tmp_path / "store")


def make_dispatcher(store_dir=None, **kwargs):
    kwargs.setdefault("heartbeat_interval", HEARTBEAT_INTERVAL)
    kwargs.setdefault("heartbeat_timeout", HEARTBEAT_TIMEOUT)
    store = None if store_dir is None else DirectoryStore(store_dir)
    return ShardDispatcher(store=store, **kwargs)


class WorkerThread:
    """A real Worker serving on a daemon thread until the dispatcher stops."""

    def __init__(self, host, port, store_dir=None, name=None, max_jobs=None):
        self.worker = Worker(
            host, port,
            store=None if store_dir is None else DirectoryStore(store_dir),
            name=name, max_jobs=max_jobs,
        )
        self.result = None
        self.error = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        try:
            self.result = asyncio.run(self.worker.run())
        except Exception as exc:  # surfaced via .join() in the test
            self.error = exc

    def join(self, timeout=10):
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "worker thread did not exit"
        if self.error is not None:
            raise self.error
        return self.result


class FakeWorker:
    """Scripted JSON-lines peer misbehaving on cue.

    ``behavior``:

    * ``"silent"`` — register, accept one assignment, then stop
      responding (no heartbeats, connection held open): the
      killed-mid-shard scenario as the dispatcher observes it.
    * ``"disconnect"`` — accept one assignment, then drop the
      connection abruptly.
    * ``"error"`` — fail every assignment with a job error, forever.
    * ``"error-mismatch"`` — fail the *first* assignment with an error
      whose ``job_id`` is the ``"?"`` placeholder a worker reports when
      it cannot even parse its assignment, then go quiet (never ready
      again): the dispatcher must requeue the held job off the error
      itself, not strand it.
    """

    def __init__(self, host, port, behavior, name="fake"):
        self.host, self.port = host, port
        self.behavior = behavior
        self.name = name
        self.assigned = []
        self._done = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        try:
            asyncio.run(self._script())
        finally:
            self._done.set()

    async def _script(self):
        reader, writer = await asyncio.open_connection(self.host, self.port)

        async def send(payload):
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()

        async def recv():
            raw = await reader.readline()
            return json.loads(raw) if raw else None

        try:
            await send({"type": "register", "name": self.name,
                        "pid": 0, "protocol": 1})
            welcome = await recv()
            assert welcome and welcome["type"] == "welcome", welcome
            while True:
                await send({"type": "ready"})
                message = await recv()
                if message is None or message["type"] != "assign":
                    return
                self.assigned.append(message["job"]["job_id"])
                if self.behavior == "silent":
                    # Outlive the heartbeat timeout without a word.
                    await asyncio.sleep(HEARTBEAT_TIMEOUT * 4)
                    return
                if self.behavior == "disconnect":
                    return
                if self.behavior == "error-mismatch":
                    await send({
                        "type": "error", "job_id": "?",
                        "error": "scripted parse failure",
                    })
                    # Stay connected but never ready again, so the only
                    # way the job can be rescheduled is the error path.
                    await asyncio.sleep(HEARTBEAT_TIMEOUT * 4)
                    return
                await send({
                    "type": "error",
                    "job_id": message["job"]["job_id"],
                    "error": "scripted failure",
                })
        finally:
            writer.close()

    def join(self, timeout=10):
        assert self._done.wait(timeout), "fake worker script did not finish"


def canon(rates) -> str:
    """Byte-identity form of a FailureRates (the acceptance oracle)."""
    return json.dumps(rates.to_dict(), sort_keys=True)
