"""Crash-recovery integration: dispatcher restarts on a durable journal.

The acceptance bar (mirrored by ``examples/recovery_smoke.py`` with a
real SIGKILL across processes): a dispatcher restarted on the journal
of a dead predecessor resumes the sweep byte-identically, recomputes
nothing the journal marks complete, and hands replayed in-flight jobs
to the client that resubmits them.
"""

import threading

import pytest

from repro.distributed import DirectoryStore, DispatchError, RunJournal
from repro.distributed.jobs import execute_job, margin_tally_jobs
from repro.serving.server import request_stats

from tests.distributed.conftest import WorkerThread, canon, make_dispatcher

VDD = 0.7


def margin_jobs(analyzer, shards=3):
    resolved = analyzer.resolved()
    return list(
        margin_tally_jobs(resolved, VDD, resolved.shard_plan(shards=shards))
    )


def flight_kinds(dispatcher):
    return [event["kind"] for event in dispatcher.flight.snapshot()]


class TestRestartOnJournal:
    def test_completed_journal_skips_every_job(
        self, dist_analyzer, store_dir, tmp_path
    ):
        """Restart after a fully finished sweep: every journaled
        completion is still in the store, so the replay enqueues
        nothing and a resubmitted sweep is pure store hits."""
        journal_dir = str(tmp_path / "journal")
        with make_dispatcher(
            store_dir, journal=RunJournal(journal_dir)
        ) as first:
            host, port = first.start()
            worker = WorkerThread(host, port, store_dir)
            first.await_workers(1, timeout=10)
            reference = canon(
                dist_analyzer.analyze_sharded(VDD, shards=3, dispatcher=first)
            )
        worker.join()

        with make_dispatcher(
            store_dir, journal=RunJournal(journal_dir)
        ) as second:
            second.start()
            # No worker this time: if anything needed computing, the
            # resubmitted sweep would hang instead of completing.
            rates = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=second
            )
            assert canon(rates) == reference
            stats = second.stats
            assert stats.journal_skipped == 3
            assert stats.journal_replayed == 0
            assert stats.store_hits == 3 and stats.computed == 0
            assert "journal_open" in flight_kinds(second)
            assert "journal_replay" in flight_kinds(second)

    def test_partial_journal_resumes_without_recompute(
        self, dist_analyzer, store_dir, tmp_path
    ):
        """The SIGKILL shape, built byte-exactly: all three jobs are
        journaled, one completed (persisted to the store, then marked
        done) before the 'crash'.  The restarted dispatcher must
        recompute only the other two, and the resubmitted sweep must
        merge byte-identically."""
        reference = canon(dist_analyzer.analyze(VDD))
        jobs = margin_jobs(dist_analyzer)
        store = DirectoryStore(store_dir)
        with RunJournal(str(tmp_path / "journal")) as journal:
            journal.open_session()
            for job in jobs:
                journal.record_job(job, "alice", 0)
            # Complete job 0 exactly the way the system does: the
            # worker persists to the store *before* reporting, then the
            # dispatcher journals the merge-accepted completion.
            execute_job(jobs[0], store)
            journal.record_done(jobs[0])

        with make_dispatcher(
            store_dir, journal=RunJournal(str(tmp_path / "journal"))
        ) as dispatcher:
            host, port = dispatcher.start()
            worker = WorkerThread(host, port, store_dir)
            dispatcher.await_workers(1, timeout=10)
            rates = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=dispatcher
            )
            assert canon(rates) == reference
            stats = dispatcher.stats
            assert stats.journal_skipped == 1
            assert stats.journal_replayed == 2
            # The zero-recompute contract: only the two unfinished jobs
            # were ever computed, no matter how the races resolved.
            assert stats.computed == 2
            assert stats.store_hits >= 1
            # The counters ride the stats probe for operators.
            probe = request_stats(host, port)
            assert probe["journal_replayed"] == 2
            assert probe["journal_skipped"] == 1
        worker.join()

    def test_client_adopts_inflight_recovery_jobs(
        self, dist_analyzer, store_dir, tmp_path
    ):
        """With no worker connected, replayed jobs sit queued; a client
        resubmitting the same sweep (fresh job ids) must adopt them by
        content address instead of double-queueing the work."""
        reference = canon(dist_analyzer.analyze(VDD))
        jobs = margin_jobs(dist_analyzer)
        with RunJournal(str(tmp_path / "journal")) as journal:
            for job in jobs:
                journal.record_job(job, "alice", 0)

        with make_dispatcher(
            store_dir, journal=RunJournal(str(tmp_path / "journal"))
        ) as dispatcher:
            host, port = dispatcher.start()
            result = {}
            runner = threading.Thread(
                target=lambda: result.update(
                    rates=dist_analyzer.analyze_sharded(
                        VDD, shards=3, dispatcher=dispatcher
                    )
                ),
                daemon=True,
            )
            runner.start()
            # The resubmission adopts all three queued recovery jobs
            # before any worker exists; the queue must not double up.
            import time

            deadline = time.monotonic() + 10
            while flight_kinds(dispatcher).count("journal_adopt") < 3:
                assert time.monotonic() < deadline, "sweep never adopted"
                time.sleep(0.01)
            assert dispatcher.queue_snapshot()["depth"] == 3
            worker = WorkerThread(host, port, store_dir)
            runner.join(60)
            assert not runner.is_alive(), "adopted sweep did not complete"
            assert canon(result["rates"]) == reference
            stats = dispatcher.stats
            assert stats.journal_replayed == 3
            assert stats.computed == 3
            assert flight_kinds(dispatcher).count("journal_adopt") == 3
        worker.join()

    def test_resubmitting_a_recovery_job_id_with_other_content_fails(
        self, dist_analyzer, store_dir, tmp_path
    ):
        """A submitted job that *reuses* a queued recovery job's id but
        carries different content cannot be told apart on the wire —
        the dispatcher must refuse it loudly, not misdeliver results."""
        jobs = margin_jobs(dist_analyzer)
        with RunJournal(str(tmp_path / "journal")) as journal:
            journal.record_job(jobs[0], "alice", 0)

        other = margin_jobs(dist_analyzer, shards=2)
        impostor = type(jobs[0]).from_wire(
            dict(other[0].to_wire(), job_id=jobs[0].job_id)
        )
        with make_dispatcher(
            store_dir, journal=RunJournal(str(tmp_path / "journal"))
        ) as dispatcher:
            dispatcher.start()
            with pytest.raises(DispatchError, match="journal-recovery"):
                dispatcher.dispatch([impostor], timeout=10)

    def test_ttl_zero_demotes_journaled_completions(
        self, dist_analyzer, store_dir, tmp_path
    ):
        """``--ttl 0`` treats every store entry as expired, so the
        replay's store cross-check must demote every ``done`` record
        back to pending — a completion the store cannot vouch for is
        not a completion."""
        from repro.runtime.tiering import make_tiered_store

        journal_dir = str(tmp_path / "journal")
        with make_dispatcher(
            store_dir, journal=RunJournal(journal_dir)
        ) as first:
            host, port = first.start()
            worker = WorkerThread(host, port, store_dir)
            first.await_workers(1, timeout=10)
            reference = canon(
                dist_analyzer.analyze_sharded(VDD, shards=3, dispatcher=first)
            )
        worker.join()

        from repro.distributed import ShardDispatcher

        from tests.distributed.conftest import (
            HEARTBEAT_INTERVAL,
            HEARTBEAT_TIMEOUT,
        )

        store = make_tiered_store(cache_dir=store_dir, lru_entries=0, ttl=0.0)
        with ShardDispatcher(
            store=store,
            journal=RunJournal(journal_dir),
            heartbeat_interval=HEARTBEAT_INTERVAL,
            heartbeat_timeout=HEARTBEAT_TIMEOUT,
        ) as second:
            host, port = second.start()
            worker = WorkerThread(host, port, store_dir)
            second.await_workers(1, timeout=10)
            rates = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=second
            )
            assert canon(rates) == reference
            stats = second.stats
            assert stats.journal_skipped == 0
            assert stats.journal_replayed == 3
        worker.join()
