"""Tracing under chaos: spans survive failure, and never change a byte.

The distributed-tracing contract, stated as properties over the chaos
harness (``tests/distributed/chaos.py``):

* with tracing *on*, every merged output stays byte-identical to the
  single-process oracle — instrumentation is invisible to the numbers;
* every executed job lands in **exactly one** completed ``job:`` span,
  no matter how many times workers died, stalled or raced on it;
* a speculative duplicate shows up as *two* ``assign`` child spans of
  one job span, exactly one of them marked ``winner``;
* worker-side ``worker.execute`` spans parent to the dispatcher's
  ``assign`` spans across the wire (the additive ``"trace"`` field);
* the exported Chrome trace of a chaos DAG run is Perfetto-loadable
  per ``benchmarks/check_artifacts.py`` — the PR's acceptance check.
"""

import asyncio
import importlib.util
import json
import os
import tempfile
import threading
from functools import lru_cache, reduce

import pytest

from repro.devices import ptm22
from repro.distributed import DirectoryStore, ShardDispatcher, Worker
from repro.distributed.dag import DagRun, job_node, reduce_node
from repro.distributed.jobs import execute_job, margin_tally_jobs
from repro.obs.tracing import Tracer
from repro.sram import make_cell
from repro.sram.montecarlo import MarginTally, MonteCarloAnalyzer

from tests.distributed.chaos import (
    ChaosEvent,
    ChaosSchedule,
    digest_of,
    run_chaos_dag,
    run_chaos_fleet,
)
from tests.distributed.conftest import (
    BLOCK_SAMPLES,
    HEARTBEAT_INTERVAL,
    HEARTBEAT_TIMEOUT,
    N_SAMPLES,
)

VDD = 0.7

CHECK_ARTIFACTS = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "check_artifacts.py"
)


def _load_check_artifacts():
    """The CI artifact checker, imported from its file (it is not a
    package member — the perf-smoke job runs it bare, stdlib-only)."""
    spec = importlib.util.spec_from_file_location(
        "check_artifacts", os.path.abspath(CHECK_ARTIFACTS)
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@lru_cache(maxsize=None)
def _analyzer():
    return MonteCarloAnalyzer(
        cell=make_cell("6t", ptm22()),
        n_samples=N_SAMPLES, block_samples=BLOCK_SAMPLES,
    ).resolved()


@lru_cache(maxsize=None)
def margin_case(vdd=VDD, shards=4):
    analyzer = _analyzer()
    jobs = tuple(margin_tally_jobs(analyzer, vdd, analyzer.shard_plan(shards=shards)))
    values = [MarginTally.from_dict(execute_job(job, None)[0]) for job in jobs]
    oracle = reduce(lambda acc, head: MarginTally.merge([acc, head]), values)
    return jobs, digest_of(oracle)


def job_spans(tracer):
    return [s for s in tracer.finished() if s.name.startswith("job:")]


def assign_spans_of(tracer, job_span):
    return [s for s in tracer.finished()
            if s.name == "assign" and s.parent_id == job_span.span_id]


def assert_jobs_covered_exactly_once(tracer, jobs):
    """Every dispatched job id in exactly one completed job span."""
    spans = job_spans(tracer)
    ids = [s.attrs["job_id"] for s in spans]
    assert sorted(ids) == sorted({job.job_id for job in jobs})
    for span in spans:
        assert span.ended
        assert span.status == "ok", (span.name, span.status)
        if span.attrs.get("outcome") == "store_hit":
            continue  # answered at enqueue; no assignment ever existed
        winners = [a for a in assign_spans_of(tracer, span)
                   if a.attrs.get("winner") is True]
        assert len(winners) == 1, (
            f"job {span.attrs['job_id']}: {len(winners)} winning "
            f"assignments"
        )


class TestChaosTracing:
    def test_kill_mid_run_keeps_coverage_and_bytes(self):
        jobs, oracle = margin_case()
        tracer = Tracer(enabled=True, deterministic=True)
        schedule = ChaosSchedule(
            events=(ChaosEvent(worker=0, after_jobs=0, action="kill"),),
        )
        with tempfile.TemporaryDirectory() as store_dir:
            run = run_chaos_fleet(
                jobs, schedule, store_dir,
                decode=MarginTally.from_dict, merge=MarginTally.merge,
                tracer=tracer,
            )
        assert run.digest == oracle, "tracing changed the merged bytes"
        assert run.stats.completed == len(jobs)
        assert_jobs_covered_exactly_once(tracer, jobs)
        # The kill leaves a failed assign span behind; its job span
        # still completes (through the retry) with one winner.
        roots = [s for s in tracer.finished() if s.name == "dispatch.run"]
        assert len(roots) == 1 and roots[0].status == "ok"
        if run.stats.retries:
            failed = [s for s in tracer.finished()
                      if s.name == "assign" and s.status == "failed"]
            assert failed, "retried run recorded no failed assign span"

    def test_speculation_is_two_assign_children_with_one_winner(self):
        jobs, oracle = margin_case()
        tracer = Tracer(enabled=True, deterministic=True)
        schedule = ChaosSchedule(
            events=(ChaosEvent(worker=0, after_jobs=0, action="stall"),),
            stall_seconds=2.0,
        )
        with tempfile.TemporaryDirectory() as store_dir:
            run = run_chaos_fleet(
                jobs, schedule, store_dir,
                decode=MarginTally.from_dict, merge=MarginTally.merge,
                tracer=tracer,
            )
        assert run.digest == oracle
        assert run.stats.speculative_wins >= 1
        assert_jobs_covered_exactly_once(tracer, jobs)
        speculated = [
            span for span in job_spans(tracer)
            if any(a.attrs.get("speculative") for a in assign_spans_of(tracer, span))
        ]
        assert speculated, "no job span carries a speculative assignment"
        for span in speculated:
            assigns = assign_spans_of(tracer, span)
            assert len(assigns) >= 2, "speculation must duplicate the assign"
            winners = [a for a in assigns if a.attrs.get("winner") is True]
            losers = [a for a in assigns if a.attrs.get("winner") is False]
            assert len(winners) == 1
            assert losers and all(
                a.status in ("lost_race", "failed") for a in losers
            )

    def test_worker_execute_spans_parent_to_assigns_across_the_wire(
        self, store_dir
    ):
        jobs, oracle = margin_case()
        tracer = Tracer(enabled=True, deterministic=True)
        dispatcher = ShardDispatcher(
            store=DirectoryStore(store_dir),
            heartbeat_interval=HEARTBEAT_INTERVAL,
            heartbeat_timeout=HEARTBEAT_TIMEOUT,
            tracer=tracer,
        )
        with dispatcher:
            host, port = dispatcher.start()
            worker = Worker(
                host, port, store=DirectoryStore(store_dir),
                name="traced", tracer=tracer,
            )
            thread = threading.Thread(
                target=lambda: asyncio.run(worker.run()), daemon=True
            )
            thread.start()
            dispatcher.await_workers(1, timeout=30)
            merged = dispatcher.dispatch(
                list(jobs), decode=MarginTally.from_dict,
                merge=MarginTally.merge,
            )
        thread.join(timeout=10)
        assert digest_of(merged) == oracle
        executes = [s for s in tracer.finished() if s.name == "worker.execute"]
        assigns = {s.span_id: s for s in tracer.finished()
                   if s.name == "assign"}
        assert len(executes) == len(jobs)
        for span in executes:
            parent = assigns.get(span.parent_id)
            assert parent is not None, "execute span lost its assign parent"
            assert span.trace_id == parent.trace_id
            assert span.attrs["job_id"] == parent.attrs["job_id"]

    def test_disabled_tracer_adds_no_wire_field(self, store_dir):
        # The duck-typed contract: with tracing off (the default), no
        # span is minted and no "trace" key rides on assignments.
        jobs, oracle = margin_case()
        dispatcher = ShardDispatcher(
            store=DirectoryStore(store_dir),
            heartbeat_interval=HEARTBEAT_INTERVAL,
            heartbeat_timeout=HEARTBEAT_TIMEOUT,
        )
        with dispatcher:
            host, port = dispatcher.start()
            worker = Worker(host, port, store=DirectoryStore(store_dir))
            thread = threading.Thread(
                target=lambda: asyncio.run(worker.run()), daemon=True
            )
            thread.start()
            dispatcher.await_workers(1, timeout=30)
            merged = dispatcher.dispatch(
                list(jobs), decode=MarginTally.from_dict,
                merge=MarginTally.merge,
            )
        thread.join(timeout=10)
        assert digest_of(merged) == oracle
        assert dispatcher.tracer.finished() == []


class TestDagTraceAcceptance:
    """The PR's acceptance scenario: a chaos DAG run — one worker
    killed, one speculation — exports a Perfetto-loadable Chrome trace
    whose span tree covers every executed job exactly once, while the
    merged output stays byte-identical to the single-process oracle."""

    @staticmethod
    def _dag():
        analyzer = _analyzer()

        def margin_node(vdd):
            return job_node(
                f"margin@{vdd}",
                lambda upstream, v=vdd: margin_tally_jobs(
                    analyzer, v, analyzer.shard_plan(shards=3)
                ),
                decode=MarginTally.from_dict,
                merge=MarginTally.merge,
            )

        combine = reduce_node(
            "combine",
            lambda upstream: {
                name: tally.to_dict() for name, tally in upstream.items()
            },
            deps=["margin@0.65", f"margin@{VDD}"],
        )
        return DagRun(nodes=[margin_node(0.65), margin_node(VDD), combine])

    def test_chaos_dag_chrome_trace_covers_every_job_once(self, tmp_path):
        class _Local:
            def dispatch(self, jobs, decode=None, merge=None, timeout=None,
                         client="default", priority=0):
                values = [execute_job(job, None)[0] for job in jobs]
                if decode is not None:
                    values = [decode(v) for v in values]
                if merge is None:
                    return values
                return reduce(lambda a, h: merge([a, h]), values)

        oracle = digest_of(self._dag().run(_Local()))

        tracer = Tracer(enabled=True, deterministic=True)
        schedule = ChaosSchedule(
            events=(
                ChaosEvent(worker=0, after_jobs=0, action="kill"),
                ChaosEvent(worker=1, after_jobs=0, action="stall"),
            ),
            stall_seconds=2.0,
        )
        with tempfile.TemporaryDirectory() as store_dir:
            run = run_chaos_dag(
                self._dag(), schedule, store_dir, tracer=tracer
            )
        assert run.digest == oracle, "chaos DAG diverged from the oracle"
        assert run.stats.workers_lost >= 1, "the kill was not observed"
        assert run.stats.speculations >= 1, "the stall never speculated"
        # 2 margin nodes x 3 shards, each accepted exactly once.
        assert run.stats.completed == 6

        path = str(tmp_path / "chaos-dag-trace.json")
        count = tracer.write_chrome_trace(path)
        assert count == len(tracer.finished())

        checker = _load_check_artifacts()
        assert checker.check_chrome_trace(path) == []

        with open(path) as fh:
            events = json.load(fh)["traceEvents"]
        names = [e["name"] for e in events]
        assert names.count("dag.run") == 1
        assert {"dag.node:margin@0.65", f"dag.node:margin@{VDD}",
                "dag.node:combine"} <= set(names)
        job_ids = [e["args"]["job_id"] for e in events
                   if e["name"].startswith("job:")]
        assert len(job_ids) == 6
        assert len(set(job_ids)) == 6, "a job appears in two span trees"
        # Every job span hangs off a dispatch.run which hangs off a
        # DAG node span: one connected tree per trace.
        by_id = {e["args"]["span_id"]: e for e in events}
        for event in events:
            if not event["name"].startswith("job:"):
                continue
            parent = by_id.get(event["args"]["parent_id"])
            assert parent is not None and parent["name"] == "dispatch.run"
            node = by_id.get(parent["args"]["parent_id"])
            assert node is not None and node["name"].startswith("dag.node:")


@pytest.mark.parametrize("deterministic", [False, True])
def test_tracer_injection_does_not_leak_into_the_process_default(
    deterministic,
):
    from repro.obs.tracing import get_tracer

    Tracer(enabled=True, deterministic=deterministic)
    assert get_tracer().enabled is False
