"""Tests of cross-kind DAG dispatch (:mod:`repro.distributed.dag`).

Validation is all-at-construction (duplicate names, unknown deps,
cycles); execution is checked end-to-end: the full paper pipeline —
margin shards → rate tables → ``nn_fault_eval`` points — run through
one real dispatcher must digest byte-identically to the phase-by-phase
single-process oracle.
"""

import os
from functools import reduce

import pytest

from repro.distributed.dag import (
    DagNode,
    DagRun,
    job_node,
    paper_pipeline_dag,
    reduce_node,
)
from repro.distributed.jobs import benchmark_model_spec, execute_job
from repro.errors import ConfigurationError

from tests.distributed.chaos import digest_of
from tests.distributed.conftest import (
    BLOCK_SAMPLES,
    N_SAMPLES,
    WorkerThread,
    make_dispatcher,
)

VDD = 0.7

MODEL = benchmark_model_spec(
    profile="fast", n_train=120, n_val=40, n_test=160, epochs=1
)


@pytest.fixture(scope="module", autouse=True)
def _module_cache(tmp_path_factory):
    """Module-scoped REPRO_CACHE_DIR: the benchmark model trains once."""
    path = str(tmp_path_factory.mktemp("dag-cache"))
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = path
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


class LocalDispatcher:
    """Phase-by-phase single-process oracle: a job node's jobs execute
    in-process with :func:`execute_job`, folded with the node's own
    decode/merge — no fleet, no store, no retries."""

    def dispatch(self, jobs, decode=None, merge=None, timeout=None,
                 client="default", priority=0):
        values = [execute_job(job, None)[0] for job in jobs]
        if decode is not None:
            values = [decode(v) for v in values]
        if merge is None:
            return list(values)
        return reduce(lambda acc, head: merge([acc, head]), values)


def _jobs_fn(upstream):  # placeholder for validation tests
    raise AssertionError("never dispatched")


class TestNodeValidation:
    def test_exactly_one_of_jobs_fn_and_compute(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            DagNode(name="both", jobs_fn=_jobs_fn, compute=lambda u: None)
        with pytest.raises(ConfigurationError, match="exactly one"):
            DagNode(name="neither")

    def test_reduce_node_cannot_fold(self):
        with pytest.raises(ConfigurationError, match="decode/merge/finalize"):
            DagNode(name="r", compute=lambda u: None, merge=lambda vs: None)

    def test_self_dependency_rejected(self):
        with pytest.raises(ConfigurationError, match="depends on itself"):
            DagNode(name="a", deps=("a",), compute=lambda u: None)

    def test_name_must_be_non_empty(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            DagNode(name="", compute=lambda u: None)


class TestDagValidation:
    def test_empty_dag_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one node"):
            DagRun(nodes=[])

    def test_max_parallel_validated(self):
        with pytest.raises(ConfigurationError, match="max_parallel"):
            DagRun(nodes=[reduce_node("a", lambda u: 1)], max_parallel=0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate node name"):
            DagRun(nodes=[
                reduce_node("a", lambda u: 1),
                reduce_node("a", lambda u: 2),
            ])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown node 'ghost'"):
            DagRun(nodes=[reduce_node("a", lambda u: 1, deps=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(ConfigurationError, match="dependency cycle"):
            DagRun(nodes=[
                reduce_node("a", lambda u: 1, deps=("b",)),
                reduce_node("b", lambda u: 2, deps=("a",)),
            ])

    def test_names_are_topologically_ordered(self):
        dag = DagRun(nodes=[
            reduce_node("sink", lambda u: 3, deps=("mid",)),
            reduce_node("mid", lambda u: 2, deps=("source",)),
            reduce_node("source", lambda u: 1),
        ])
        names = dag.names
        assert names.index("source") < names.index("mid") < names.index("sink")


class TestDagExecution:
    def test_reduce_chain_threads_upstream_results(self):
        """A reduce-only DAG needs no dispatcher at all; each node sees
        exactly its declared dependencies' results."""
        seen = {}

        def tail(upstream):
            seen.update(upstream)
            return upstream["head"] + 1

        dag = DagRun(nodes=[
            reduce_node("head", lambda u: 41),
            reduce_node("tail", tail, deps=("head",)),
        ])
        results = dag.run(dispatcher=None)
        assert results == {"head": 41, "tail": 42}
        assert seen == {"head": 41}

    def test_diamond_runs_with_bounded_pool(self):
        """A diamond wider than max_parallel still completes (the
        topological-submission deadlock-freedom argument)."""
        def add(upstream):
            return sum(upstream.values())

        dag = DagRun(nodes=[
            reduce_node("src", lambda u: 1),
            reduce_node("l1", add, deps=("src",)),
            reduce_node("l2", add, deps=("src",)),
            reduce_node("l3", add, deps=("src",)),
            reduce_node("sink", add, deps=("l1", "l2", "l3")),
        ], max_parallel=1)
        assert dag.run(dispatcher=None)["sink"] == 3

    def test_node_failure_propagates_by_name(self):
        def boom(upstream):
            raise RuntimeError("node exploded")

        dag = DagRun(nodes=[
            reduce_node("bad", boom),
            reduce_node("after", lambda u: 1, deps=("bad",)),
        ])
        with pytest.raises(RuntimeError, match="node exploded"):
            dag.run(dispatcher=None)

    def test_empty_job_list_is_a_configuration_error(self):
        dag = DagRun(nodes=[job_node("hollow", lambda upstream: [])])
        with pytest.raises(ConfigurationError, match="produced no jobs"):
            dag.run(dispatcher=None)


class TestPaperPipelineDag:
    def test_vdds_validated(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            paper_pipeline_dag(MODEL, [])
        with pytest.raises(ConfigurationError, match="ascending"):
            paper_pipeline_dag(MODEL, [0.7, 0.6])
        with pytest.raises(ConfigurationError, match="ascending"):
            paper_pipeline_dag(MODEL, [0.7, 0.7])

    def test_shape(self):
        dag = paper_pipeline_dag(MODEL, [0.6, VDD], n_samples=N_SAMPLES)
        names = dag.names
        assert set(names) == {
            "margin-6t-v0600", "margin-6t-v0700",
            "margin-8t-v0600", "margin-8t-v0700",
            "tables", "nn-fault",
        }
        assert names[-1] == "nn-fault"
        assert names.index("tables") > max(
            names.index(n) for n in names if n.startswith("margin-")
        )

    def test_end_to_end_matches_single_process_oracle(self, store_dir):
        """The acceptance bar: the whole pipeline through one real
        dispatcher and fleet digests identically to the phase-by-phase
        in-process run — every number of the paper's loop, one DAG."""
        dag = paper_pipeline_dag(
            MODEL, [VDD], rows=64, n_samples=N_SAMPLES,
            block_samples=BLOCK_SAMPLES, shards=3,
            n_trials=1, eval_seed=7, run_id="dagtest",
        )
        oracle = dag.run(LocalDispatcher())
        with make_dispatcher(store_dir) as dispatcher:
            host, port = dispatcher.start()
            workers = [
                WorkerThread(host, port, store_dir, name=f"w{i}")
                for i in range(2)
            ]
            dispatcher.await_workers(2, timeout=10)
            result = dag.run(dispatcher, timeout=120)
            stats = dispatcher.stats
        for worker in workers:
            worker.join()
        assert digest_of(result) == digest_of(oracle)
        assert set(result) == set(dag.names)
        # 3 margin shards x 2 kinds + 1 hybrid point + 1 baseline.
        assert stats.jobs == 8 and stats.completed == 8
        # The stats probe attributed each stage's queue to its node.
        labels = [doc["label"] for doc in result["nn-fault"]]
        assert labels == ["hybrid-v0700", "baseline"]

    def test_job_ids_are_node_scoped_and_run_tagged(self):
        dag = paper_pipeline_dag(
            MODEL, [VDD], n_samples=N_SAMPLES,
            block_samples=BLOCK_SAMPLES, shards=2, run_id="tag0",
        )
        margin_node = next(
            node for node in dag.nodes if node.name == "margin-6t-v0700"
        )
        ids = [job.job_id for job in margin_node.jobs_fn({})]
        assert ids == ["mt-tag06t0-0", "mt-tag06t0-1"]
