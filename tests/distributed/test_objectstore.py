"""Tests of the S3-style object-store backend and its in-process fake."""

import json
import threading
import urllib.request
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.distributed.objectstore import (
    FakeObjectStoreServer,
    ObjectStore,
    ObjectStoreError,
)


@pytest.fixture()
def server():
    with FakeObjectStoreServer() as srv:
        yield srv


@pytest.fixture()
def store(server):
    return ObjectStore(server.url)


class TestRoundTrip:
    def test_put_then_get(self, store):
        payload = {"cell": "6t", "vdd": 0.7, "seed": 3}
        assert store.get("mcshard", payload) is None
        store.put("mcshard", payload, {"fails": [1, 2]})
        assert store.get("mcshard", payload) == {"fails": [1, 2]}
        assert store.tier.hits == 1 and store.tier.misses == 1
        assert store.tier.errors == 0  # a 404 is a miss, not a failure

    def test_last_writer_wins(self, store):
        store.put("ns", {"k": 1}, "first")
        store.put("ns", {"k": 1}, "second")
        assert store.get("ns", {"k": 1}) == "second"

    def test_two_clients_share_addresses(self, server):
        writer, reader = ObjectStore(server.url), ObjectStore(server.url)
        writer.put("ns", {"k": 1}, [1.5, 2.5])
        assert reader.get("ns", {"k": 1}) == [1.5, 2.5]

    def test_floats_roundtrip_bit_exact(self, store):
        value = [0.1 + 0.2, 1e-300, -0.0]
        store.put("ns", {"k": 1}, value)
        assert store.get("ns", {"k": 1}) == value

    def test_describe_and_repr(self, store, server):
        assert store.describe() == f"object:{server.url}"
        assert server.url in repr(store)

    def test_object_url_quotes_namespace(self, store):
        url = store.object_url("name space", {"k": 1})
        assert "name%20space" in url


class TestDegradation:
    def test_unreachable_store_reads_as_miss_with_error(self):
        dead = ObjectStore(
            "http://127.0.0.1:1/repro-cache", timeout=0.5, retry_delay=0.0
        )
        assert dead.get("ns", {"k": 1}) is None
        # Both attempts failed (the transient-error retry fired once),
        # and the read still degraded to exactly one miss.
        assert dead.tier.errors == 2
        assert dead.tier.retries == 1
        assert dead.tier.misses == 1

    def test_unreachable_store_put_raises(self):
        dead = ObjectStore("http://127.0.0.1:1/repro-cache", timeout=0.5)
        with pytest.raises(ObjectStoreError, match="unreachable"):
            dead.put("ns", {"k": 1}, "v")
        assert dead.tier.errors == 1

    def test_read_only_store_rejects_puts(self, server, store):
        server.read_only = True
        with pytest.raises(ObjectStoreError):
            store.put("ns", {"k": 1}, "v")
        server.read_only = False
        store.put("ns", {"k": 1}, "v")  # recovered
        assert store.get("ns", {"k": 1}) == "v"

    def test_corrupt_remote_document_is_a_miss(self, server, store):
        """Torn bytes at the remote (a dying proxy, a partial upload on
        a non-atomic backend) must read as None, counted as an error."""
        store.put("ns", {"k": 1}, {"good": True})
        url = store.object_url("ns", {"k": 1})
        for garbage in (b"{\"value\": ", b"", b"not json at all"):
            request = urllib.request.Request(url, data=garbage, method="PUT")
            with urllib.request.urlopen(request, timeout=5.0):
                pass
            assert store.get("ns", {"k": 1}) is None
        # Well-formed JSON that is not a cache document either.
        request = urllib.request.Request(url, data=b"[1,2]", method="PUT")
        with urllib.request.urlopen(request, timeout=5.0):
            pass
        assert store.get("ns", {"k": 1}) is None
        assert store.tier.errors == 4

    def test_url_validation(self):
        with pytest.raises(ValueError, match="store URL"):
            ObjectStore("ftp://host/prefix")
        with pytest.raises(ValueError, match="store URL"):
            ObjectStore("not-a-url")
        with pytest.raises(ValueError, match="timeout"):
            ObjectStore("http://host/prefix", timeout=0.0)


class _FlakyHandler(BaseHTTPRequestHandler):
    """Answers GETs from a scripted status sequence, then serves the
    document — the dying-proxy / restarting-backend shape the transient
    retry exists for."""

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler contract
        script = self.server.script  # type: ignore[attr-defined]
        if script:
            self.send_response(script.pop(0))
            self.end_headers()
            return
        body = json.dumps(
            {"value": self.server.value}  # type: ignore[attr-defined]
        ).encode()
        self.send_response(200)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


@contextmanager
def flaky_server(script, value="payload"):
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
    httpd.script = list(script)  # type: ignore[attr-defined]
    httpd.value = value  # type: ignore[attr-defined]
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield ObjectStore(f"http://{host}:{port}/repro-cache", retry_delay=0.0)
    finally:
        httpd.shutdown()
        httpd.server_close()


class TestTransientRetry:
    def test_one_transient_5xx_is_retried_and_recovered(self):
        with flaky_server([500]) as store:
            assert store.get("ns", {"k": 1}) == "payload"
        assert store.tier.retries == 1
        assert store.tier.errors == 1
        assert store.tier.hits == 1 and store.tier.misses == 0

    def test_persistent_5xx_degrades_to_a_miss_after_one_retry(self):
        with flaky_server([503, 503]) as store:
            assert store.get("ns", {"k": 1}) is None
        assert store.tier.retries == 1
        assert store.tier.errors == 2
        assert store.tier.misses == 1

    def test_client_errors_are_not_retried(self):
        """A 4xx is the store's verdict on *this request* — retrying
        the same bytes cannot change it."""
        with flaky_server([403]) as store:
            assert store.get("ns", {"k": 1}) is None
        assert store.tier.retries == 0
        assert store.tier.errors == 1

    def test_404_stays_a_clean_miss(self):
        with flaky_server([404]) as store:
            assert store.get("ns", {"k": 1}) is None
        assert store.tier.retries == 0
        assert store.tier.errors == 0
        assert store.tier.misses == 1


class TestRemoteStats:
    def test_stats_endpoint_counts_traffic(self, server, store):
        store.put("ns", {"k": 1}, "v")
        store.get("ns", {"k": 1})
        store.get("ns", {"k": 2})  # miss
        stats = store.remote_stats()
        assert stats["objects"] == 1
        assert stats["puts"] == 1
        assert stats["gets"] == 2
        assert stats["misses"] == 1
        assert stats["bytes"] > 0

    def test_stats_unreachable_raises(self):
        dead = ObjectStore("http://127.0.0.1:1/repro-cache", timeout=0.5)
        with pytest.raises(ObjectStoreError, match="stats"):
            dead.remote_stats()


class TestFakeServerProtocol:
    def test_delete_verb(self, server, store):
        store.put("ns", {"k": 1}, "v")
        url = store.object_url("ns", {"k": 1})
        request = urllib.request.Request(url, method="DELETE")
        with urllib.request.urlopen(request, timeout=5.0) as response:
            assert json.loads(response.read()) == {"ok": True}
        assert store.get("ns", {"k": 1}) is None
        # Deleting a missing object 404s.
        request = urllib.request.Request(url, method="DELETE")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 404

    def test_start_is_idempotent(self):
        server = FakeObjectStoreServer()
        try:
            assert server.start() is server.start()
        finally:
            server.stop()

    def test_address_and_url(self, server):
        host, port = server.address
        assert host == "127.0.0.1" and port > 0
        assert server.url == f"http://{host}:{port}/repro-cache"


class TestExecuteJobIntegration:
    def test_warm_remote_store_short_circuits_computation(self, server):
        """A worker whose store already holds a shard's address reports
        cached=True and never computes — the zero-recompute contract a
        cold fleet against a warm object store relies on."""
        from repro.distributed.jobs import execute_job, margin_tally_jobs
        from repro.sram import make_cell
        from repro.devices.technology import get_technology
        from repro.sram.montecarlo import MonteCarloAnalyzer
        from repro.runtime import ShardPlan

        analyzer = MonteCarloAnalyzer(
            cell=make_cell("6t", get_technology("ptm22")),
            n_samples=256, block_samples=64,
        ).resolved()
        plan = ShardPlan.plan(256, block_samples=64, shards=1)
        (job,) = margin_tally_jobs(analyzer, vdd=0.7, plan=plan)
        store = ObjectStore(server.url)
        value, cached = execute_job(job, store)
        assert cached is False
        warm_value, warm_cached = execute_job(job, ObjectStore(server.url))
        assert warm_cached is True
        assert json.dumps(warm_value, sort_keys=True) == json.dumps(
            value, sort_keys=True
        )
