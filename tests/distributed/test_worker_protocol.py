"""Worker-side protocol edges: registration, welcome validation, drains.

These tests script the *dispatcher* side of the wire by hand, so they
can send exactly the malformed welcome documents a real dispatcher
never would — the worker must refuse them with a documented
:class:`~repro.distributed.protocol.ProtocolError`, never a bare
``KeyError`` out of the message loop.
"""

import asyncio
import threading

import pytest

from repro.distributed import ProtocolError, run_worker
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    STREAM_LIMIT,
    recv_message,
    send_message,
)
from repro.distributed.worker import Worker


GOOD_WELCOME = {
    "type": "welcome",
    "protocol": PROTOCOL_VERSION,
    "heartbeat_interval": 5.0,
}


class ScriptedDispatcher:
    """A hand-scripted dispatcher endpoint.

    Accepts one worker, records its ``register`` message, replies with
    the configured ``welcome`` document (or nothing), then — if the
    worker survives to send ``ready`` — answers with ``shutdown`` and
    reads the stream to EOF.  Use as a context manager; ``host``/
    ``port`` are live inside the block.
    """

    def __init__(self, welcome=GOOD_WELCOME):
        self.welcome = welcome
        self.register = None
        self.received = []
        self.host = "127.0.0.1"
        self.port = None
        self._ready = threading.Event()
        self._thread = None

    def __enter__(self):
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve()), daemon=True
        )
        self._thread.start()
        assert self._ready.wait(timeout=10), "scripted dispatcher never bound"
        return self

    def __exit__(self, *exc):
        self._thread.join(timeout=20)
        assert not self._thread.is_alive(), "scripted dispatcher hung"

    async def _serve(self):
        done = asyncio.Event()

        async def handle(reader, writer):
            try:
                self.register = await recv_message(reader)
                if self.welcome is not None:
                    await send_message(writer, self.welcome)
                    while True:
                        message = await recv_message(reader)
                        if message is None:
                            break
                        self.received.append(message)
                        if message.get("type") == "ready":
                            await send_message(writer, {"type": "shutdown"})
            except (ProtocolError, ConnectionError, OSError):
                pass
            finally:
                writer.close()
                done.set()

        server = await asyncio.start_server(
            handle, self.host, 0, limit=STREAM_LIMIT
        )
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await asyncio.wait_for(done.wait(), timeout=30)


def _run(worker: Worker) -> int:
    return asyncio.run(worker.run())


class TestWelcomeValidation:
    def test_clean_round_trip(self):
        with ScriptedDispatcher() as d:
            assert _run(Worker(d.host, d.port, name="w")) == 0
        assert d.register["type"] == "register"
        assert d.register["name"] == "w"
        assert d.register["protocol"] == PROTOCOL_VERSION
        assert [m["type"] for m in d.received] == ["ready"]

    def test_non_welcome_reply_is_protocol_error(self):
        with ScriptedDispatcher(
            welcome={"type": "error", "error": "version skew"}
        ) as d:
            with pytest.raises(ProtocolError, match="rejected registration"):
                _run(Worker(d.host, d.port))

    def test_missing_type_key_is_protocol_error_not_keyerror(self):
        """The historical bug shape: a type-less welcome must surface
        as the documented ProtocolError (here from envelope validation
        in ``recv_message``), never as a bare ``KeyError``."""
        with ScriptedDispatcher(welcome={"heartbeat_interval": 1.0}) as d:
            with pytest.raises(ProtocolError, match="'type'"):
                _run(Worker(d.host, d.port))

    @pytest.mark.parametrize("interval", [0, -1, -0.5, "fast", True, None])
    def test_bad_heartbeat_interval_is_rejected(self, interval):
        """A zero/negative/non-numeric interval would busy-loop the
        heartbeat task; the worker must refuse to serve under it."""
        welcome = dict(GOOD_WELCOME, heartbeat_interval=interval)
        with ScriptedDispatcher(welcome=welcome) as d:
            with pytest.raises(ProtocolError, match="heartbeat_interval"):
                _run(Worker(d.host, d.port))

    def test_absent_heartbeat_interval_defaults(self):
        """An old dispatcher that omits the field still gets served."""
        welcome = {"type": "welcome", "protocol": PROTOCOL_VERSION}
        with ScriptedDispatcher(welcome=welcome) as d:
            assert _run(Worker(d.host, d.port)) == 0

    def test_run_worker_exits_1_on_protocol_error(self, capsys):
        """``run_worker`` turns the documented ProtocolError into a
        nonzero exit code instead of a traceback."""
        welcome = dict(GOOD_WELCOME, heartbeat_interval=0)
        with ScriptedDispatcher(welcome=welcome) as d:
            assert run_worker(d.host, d.port) == 1
        assert "heartbeat_interval" in capsys.readouterr().out


class MultiSessionDispatcher:
    """Serves a scripted *sequence* of sessions on one port — the
    restart shapes a reconnecting worker must ride out.

    Behaviors, one per accepted connection:

    * ``"serve"`` — welcome, answer the first ``ready`` with
      ``shutdown`` (a clean session).
    * ``"drop"`` — welcome, then sever the connection: the worker sees
      EOF *after* registering, the dispatcher-restart shape.
    * ``"reject"`` — refuse registration with an error document, the
      version-skew shape (must stay fatal even under ``reconnect``).
    """

    def __init__(self, sessions, port=0):
        self.sessions = list(sessions)
        self.registers = []
        self.host = "127.0.0.1"
        self.port = port
        self._ready = threading.Event()
        self._thread = None

    def __enter__(self):
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve()), daemon=True
        )
        self._thread.start()
        assert self._ready.wait(timeout=10), "scripted dispatcher never bound"
        return self

    def __exit__(self, *exc):
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "scripted dispatcher hung"

    async def _serve(self):
        remaining = list(self.sessions)
        done = asyncio.Event()

        async def handle(reader, writer):
            behavior = remaining.pop(0) if remaining else "serve"
            try:
                self.registers.append(await recv_message(reader))
                if behavior == "reject":
                    await send_message(
                        writer, {"type": "error", "error": "version skew"}
                    )
                    return
                await send_message(writer, GOOD_WELCOME)
                if behavior == "drop":
                    return
                while True:
                    message = await recv_message(reader)
                    if message is None:
                        return
                    if message.get("type") == "ready":
                        await send_message(writer, {"type": "shutdown"})
            except (ProtocolError, ConnectionError, OSError):
                pass
            finally:
                writer.close()
                if not remaining:
                    done.set()

        server = await asyncio.start_server(
            handle, self.host, self.port, limit=STREAM_LIMIT
        )
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await asyncio.wait_for(done.wait(), timeout=30)


def _free_port():
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestReconnect:
    def test_rides_out_a_dispatcher_restart(self):
        """EOF after registration, then a healthy dispatcher on the
        same port: the worker re-registers and serves to shutdown."""
        with MultiSessionDispatcher(["drop", "serve"]) as d:
            worker = Worker(
                d.host, d.port, name="phoenix",
                reconnect=True, reconnect_backoff=0.02,
            )
            assert _run(worker) == 0
        assert worker.reconnects == 1
        assert [r["name"] for r in d.registers] == ["phoenix", "phoenix"]

    def test_without_reconnect_eof_is_a_clean_exit(self):
        """The historical contract: a gone dispatcher ends a default
        worker cleanly (it served until the dispatcher stopped)."""
        with MultiSessionDispatcher(["drop"]) as d:
            worker = Worker(d.host, d.port)
            assert _run(worker) == 0
        assert worker.reconnects == 0

    def test_exhausted_attempts_raise_connection_error(self):
        worker = Worker(
            "127.0.0.1", _free_port(),
            reconnect=True, reconnect_backoff=0.01,
            reconnect_max_attempts=2,
        )
        with pytest.raises(ConnectionError, match="2 reconnect attempts"):
            _run(worker)

    def test_run_worker_exits_1_only_after_exhaustion(self, capsys):
        assert run_worker(
            "127.0.0.1", _free_port(),
            reconnect=True, reconnect_backoff=0.01,
            reconnect_max_attempts=1,
        ) == 1
        assert "reconnect attempts" in capsys.readouterr().out

    def test_dials_until_the_dispatcher_appears(self):
        """A worker started before its dispatcher binds keeps dialing
        instead of dying — fleet and control plane can start in any
        order."""
        port = _free_port()
        worker = Worker(
            "127.0.0.1", port, name="early",
            reconnect=True, reconnect_backoff=0.05,
        )
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(rc=_run(worker)), daemon=True
        )
        thread.start()
        import time

        time.sleep(0.2)  # let a few dials fail first
        with MultiSessionDispatcher(["serve"], port=port) as d:
            thread.join(timeout=20)
        assert not thread.is_alive(), "worker never reached the dispatcher"
        assert result["rc"] == 0
        assert d.registers and d.registers[0]["name"] == "early"

    def test_protocol_errors_stay_fatal_under_reconnect(self):
        """A dispatcher this worker cannot understand must not be
        re-dialled — version skew is not an outage."""
        with MultiSessionDispatcher(["reject"]) as d:
            worker = Worker(d.host, d.port, reconnect=True,
                            reconnect_backoff=0.01)
            with pytest.raises(ProtocolError, match="rejected registration"):
                _run(worker)
        assert len(d.registers) == 1


class TestDrainAckTimeout:
    def test_default_is_the_protocol_constant(self):
        from repro.distributed.protocol import DRAIN_ACK_TIMEOUT

        assert DRAIN_ACK_TIMEOUT == 10.0
        assert Worker("h", 1).ack_timeout == DRAIN_ACK_TIMEOUT

    def test_knob_bounds_the_silent_peer_wait(self):
        """A silent dispatcher cannot hold a draining worker past the
        configured ack timeout (the old hardcoded wait was 10s)."""
        import time

        async def scenario():
            worker = Worker("127.0.0.1", 1, ack_timeout=0.05)
            await worker._await_drain_ack(asyncio.StreamReader())

        start = time.monotonic()
        asyncio.run(scenario())
        assert time.monotonic() - start < 5.0


class TestWorkerCliRoundTrip:
    def test_ttl_zero_composes_tiered_store(self, tmp_path, monkeypatch):
        """Satellite regression: ``--ttl 0`` is a real tiering request
        ("treat every entry as already expired"), so the CLI must build
        the tiered composition and hand it ``ttl=0.0`` — the old
        truthiness check silently dropped it."""
        import repro.runtime.tiering as tiering
        from repro.cli import main

        calls = []
        real = tiering.make_tiered_store

        def spy(**kwargs):
            calls.append(kwargs)
            return real(**kwargs)

        monkeypatch.setattr(tiering, "make_tiered_store", spy)
        with ScriptedDispatcher() as d:
            rc = main([
                "worker",
                "--connect", f"{d.host}:{d.port}",
                "--cache-dir", str(tmp_path / "cache"),
                "--ttl", "0",
            ])
        assert rc == 0
        assert len(calls) == 1
        assert calls[0]["ttl"] == 0.0
        assert calls[0]["cache_dir"] == str(tmp_path / "cache")

    def test_no_tiering_flags_keeps_plain_store(self, tmp_path, monkeypatch):
        import repro.runtime.tiering as tiering
        from repro.cli import main

        calls = []
        real = tiering.make_tiered_store

        def spy(**kwargs):
            calls.append(kwargs)
            return real(**kwargs)

        monkeypatch.setattr(tiering, "make_tiered_store", spy)
        with ScriptedDispatcher() as d:
            rc = main([
                "worker",
                "--connect", f"{d.host}:{d.port}",
                "--cache-dir", str(tmp_path / "cache"),
            ])
        assert rc == 0
        assert calls == []
