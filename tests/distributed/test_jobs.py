"""Tests of shard-job serialization and worker-side execution."""

import pytest

from repro.distributed import (
    DirectoryStore,
    ShardJob,
    analyzer_from_spec,
    execute_job,
    margin_tally_jobs,
)
from repro.errors import ConfigurationError
from repro.runtime.sharding import ShardedMonteCarlo
from repro.sram.montecarlo import MarginTally, tally_shard

VDD = 0.7


def jobs_for(analyzer, shards=3):
    resolved = analyzer.resolved()
    plan = resolved.shard_plan(shards=shards)
    return resolved, plan, margin_tally_jobs(resolved, VDD, plan)


class TestShardJob:
    def test_wire_round_trip(self, dist_analyzer):
        _, _, jobs = jobs_for(dist_analyzer)
        for job in jobs:
            assert ShardJob.from_wire(job.to_wire()) == job

    def test_unknown_kind_rejected(self, dist_analyzer):
        _, _, (job, *_) = jobs_for(dist_analyzer)
        wire = job.to_wire()
        wire["kind"] = "quantum_tally"
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            ShardJob.from_wire(wire)

    def test_missing_fields_rejected(self, dist_analyzer):
        _, _, (job, *_) = jobs_for(dist_analyzer)
        wire = job.to_wire()
        del wire["payload"]
        with pytest.raises(ConfigurationError, match="lacks fields"):
            ShardJob.from_wire(wire)

    def test_inconsistent_descriptor_rejected(self, dist_analyzer):
        _, _, (job, *_) = jobs_for(dist_analyzer)
        wire = job.to_wire()
        wire["shard"] = {"start_block": 0, "n_blocks": 2, "n_samples": 10_000}
        with pytest.raises(ConfigurationError, match="inconsistent"):
            ShardJob.from_wire(wire)

    def test_to_shard_matches_plan(self, dist_analyzer):
        _, plan, jobs = jobs_for(dist_analyzer)
        assert [job.to_shard() for job in jobs] == list(plan.shards())


class TestAddressCompatibility:
    def test_payload_equals_local_sharded_address(self, dist_analyzer):
        """A distributed job writes to the exact store address a local
        ``analyze_sharded`` run uses — the cross-mode dedupe contract."""
        resolved, plan, jobs = jobs_for(dist_analyzer)
        engine = ShardedMonteCarlo(plan)
        spec = resolved.cache_payload(VDD)
        for job, shard in zip(jobs, plan.shards()):
            assert job.namespace == engine.namespace
            assert job.payload == engine.shard_payload(spec, shard)

    def test_job_ids_unique_and_ordered(self, dist_analyzer):
        _, _, jobs = jobs_for(dist_analyzer)
        assert len({job.job_id for job in jobs}) == len(jobs)
        assert [job.shard_index for job in jobs] == list(range(len(jobs)))


class TestAnalyzerFromSpec:
    def test_spec_round_trip(self, dist_analyzer):
        resolved = dist_analyzer.resolved()
        spec = resolved.cache_payload(VDD)
        rebuilt = analyzer_from_spec(spec)
        # The rebuilt analyzer addresses the same population: identical
        # cache payloads means identical streams, blocks and numbers.
        assert rebuilt.cache_payload(VDD) == spec

    def test_unreconstructible_spec_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="not reconstructible"):
            analyzer_from_spec({"technology": {}, "kind": "6t"})


class TestExecuteJob:
    def test_computes_the_reference_tally(self, dist_analyzer):
        resolved, plan, jobs = jobs_for(dist_analyzer)
        for job, shard in zip(jobs, plan.shards()):
            value, cached = execute_job(job, store=None)
            assert cached is False
            reference = tally_shard(resolved, VDD, shard).to_dict()
            assert value == reference

    def test_store_short_circuits_recomputation(self, dist_analyzer, store_dir):
        store = DirectoryStore(store_dir)
        _, _, (job, *_) = jobs_for(dist_analyzer)
        value, cached = execute_job(job, store)
        assert cached is False
        again, cached_again = execute_job(job, store)
        assert cached_again is True
        assert again == value
        # The cached dict decodes to the same exact tally.
        assert MarginTally.from_dict(again) == MarginTally.from_dict(value)

    def test_bad_vdd_in_spec_is_a_job_error(self, dist_analyzer):
        _, _, (job, *_) = jobs_for(dist_analyzer)
        wire = job.to_wire()
        wire["spec"] = {**wire["spec"], "vdd": -1.0}
        bad = ShardJob.from_wire(wire)
        with pytest.raises(ConfigurationError, match="vdd"):
            execute_job(bad, store=None)
