"""Tests of shard-job serialization and worker-side execution."""

import json
import os
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import ptm22
from repro.distributed import (
    DirectoryStore,
    ShardJob,
    analyzer_from_spec,
    benchmark_model_spec,
    execute_job,
    fault_block_jobs,
    is_shard_jobs,
    margin_tally_jobs,
    nn_fault_eval_jobs,
    register_job_kind,
    registered_job_kinds,
)
from repro.distributed import concat_blocks, model_from_spec, sampler_from_spec
from repro.distributed.jobs import _JOB_KINDS
from repro.errors import ConfigurationError
from repro.fault.evaluate import (
    FaultTrialSpec,
    evaluate_many_under_faults,
    evaluate_under_faults,
)
from repro.fault.injector import WeightFaultInjector
from repro.fault.model import BitErrorRates
from repro.runtime.sharding import ShardedMonteCarlo
from repro.sram import make_cell
from repro.sram.importance_sampling import ImportanceSampler
from repro.sram.montecarlo import MarginTally, MonteCarloAnalyzer, tally_shard

VDD = 0.7

#: Model spec used only for job *construction* (validators never train).
MODEL = benchmark_model_spec(profile="fast", n_train=120, n_val=40,
                             n_test=160, epochs=1)


def jobs_for(analyzer, shards=3):
    resolved = analyzer.resolved()
    plan = resolved.shard_plan(shards=shards)
    return resolved, plan, margin_tally_jobs(resolved, VDD, plan)


class TestShardJob:
    def test_wire_round_trip(self, dist_analyzer):
        _, _, jobs = jobs_for(dist_analyzer)
        for job in jobs:
            assert ShardJob.from_wire(job.to_wire()) == job

    def test_unknown_kind_rejected(self, dist_analyzer):
        _, _, (job, *_) = jobs_for(dist_analyzer)
        wire = job.to_wire()
        wire["kind"] = "quantum_tally"
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            ShardJob.from_wire(wire)

    def test_missing_fields_rejected(self, dist_analyzer):
        _, _, (job, *_) = jobs_for(dist_analyzer)
        wire = job.to_wire()
        del wire["payload"]
        with pytest.raises(ConfigurationError, match="lacks fields"):
            ShardJob.from_wire(wire)

    def test_inconsistent_descriptor_rejected(self, dist_analyzer):
        _, _, (job, *_) = jobs_for(dist_analyzer)
        wire = job.to_wire()
        wire["shard"] = {"start_block": 0, "n_blocks": 2, "n_samples": 10_000}
        with pytest.raises(ConfigurationError, match="inconsistent"):
            ShardJob.from_wire(wire)

    def test_to_shard_matches_plan(self, dist_analyzer):
        _, plan, jobs = jobs_for(dist_analyzer)
        assert [job.to_shard() for job in jobs] == list(plan.shards())


class TestAddressCompatibility:
    def test_payload_equals_local_sharded_address(self, dist_analyzer):
        """A distributed job writes to the exact store address a local
        ``analyze_sharded`` run uses — the cross-mode dedupe contract."""
        resolved, plan, jobs = jobs_for(dist_analyzer)
        engine = ShardedMonteCarlo(plan)
        spec = resolved.cache_payload(VDD)
        for job, shard in zip(jobs, plan.shards()):
            assert job.namespace == engine.namespace
            assert job.payload == engine.shard_payload(spec, shard)

    def test_job_ids_unique_and_ordered(self, dist_analyzer):
        _, _, jobs = jobs_for(dist_analyzer)
        assert len({job.job_id for job in jobs}) == len(jobs)
        assert [job.shard_index for job in jobs] == list(range(len(jobs)))


class TestAnalyzerFromSpec:
    def test_spec_round_trip(self, dist_analyzer):
        resolved = dist_analyzer.resolved()
        spec = resolved.cache_payload(VDD)
        rebuilt = analyzer_from_spec(spec)
        # The rebuilt analyzer addresses the same population: identical
        # cache payloads means identical streams, blocks and numbers.
        assert rebuilt.cache_payload(VDD) == spec

    def test_unreconstructible_spec_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="not reconstructible"):
            analyzer_from_spec({"technology": {}, "kind": "6t"})


class TestExecuteJob:
    def test_computes_the_reference_tally(self, dist_analyzer):
        resolved, plan, jobs = jobs_for(dist_analyzer)
        for job, shard in zip(jobs, plan.shards()):
            value, cached = execute_job(job, store=None)
            assert cached is False
            reference = tally_shard(resolved, VDD, shard).to_dict()
            assert value == reference

    def test_store_short_circuits_recomputation(self, dist_analyzer, store_dir):
        store = DirectoryStore(store_dir)
        _, _, (job, *_) = jobs_for(dist_analyzer)
        value, cached = execute_job(job, store)
        assert cached is False
        again, cached_again = execute_job(job, store)
        assert cached_again is True
        assert again == value
        # The cached dict decodes to the same exact tally.
        assert MarginTally.from_dict(again) == MarginTally.from_dict(value)

    def test_bad_vdd_in_spec_is_a_job_error(self, dist_analyzer):
        _, _, (job, *_) = jobs_for(dist_analyzer)
        wire = job.to_wire()
        wire["spec"] = {**wire["spec"], "vdd": -1.0}
        bad = ShardJob.from_wire(wire)
        with pytest.raises(ConfigurationError, match="vdd"):
            execute_job(bad, store=None)


# ----------------------------------------------------------------------
# Job-kind registry and the multi-workload wire format
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _resolved_analyzer():
    return MonteCarloAnalyzer(
        cell=make_cell("6t", ptm22()), n_samples=1200, block_samples=256
    ).resolved()


@lru_cache(maxsize=None)
def _sampler():
    return ImportanceSampler(make_cell("6t", ptm22()))


def _rates(p_read, p_write):
    return BitErrorRates(
        vdd=VDD, n_bits=8, msb_in_8t=2,
        p_read=np.full(8, p_read), p_write=np.full(8, p_write),
    )


@st.composite
def any_kind_jobs(draw):
    """One job of any registered kind, with drawn parameters.

    Construction only — no compute function ever runs, so the strategy
    is cheap enough to sweep every kind's parameter space.
    """
    kind = draw(st.sampled_from(registered_job_kinds()))
    if kind == "margin_tally":
        resolved = _resolved_analyzer()
        shards = draw(st.integers(min_value=1, max_value=5))
        jobs = margin_tally_jobs(
            resolved, VDD, resolved.shard_plan(shards=shards)
        )
    elif kind == "is_shard":
        n_points = draw(st.integers(min_value=1, max_value=4))
        jobs = is_shard_jobs(
            _sampler(),
            [0.6 + 0.05 * i for i in range(n_points)],
            n_samples=draw(st.integers(min_value=100, max_value=2000)),
            seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
            max_shift_sigma=draw(st.floats(min_value=4.0, max_value=14.0)),
        )
    elif kind == "fault_block":
        n_specs = draw(st.integers(min_value=1, max_value=6))
        with_injector = draw(st.booleans())
        injector = (
            WeightFaultInjector([_rates(5e-3, 2e-3)] * 2)
            if with_injector else None
        )
        specs = [
            FaultTrialSpec(
                injector=injector,
                n_trials=draw(st.integers(min_value=1, max_value=4)),
                seed=s,
            )
            for s in range(n_specs)
        ]
        jobs = fault_block_jobs(
            MODEL, specs,
            blocks=draw(st.integers(min_value=1, max_value=n_specs)),
        )
    else:  # nn_fault_eval
        n_points = draw(st.integers(min_value=1, max_value=3))
        points = []
        for i in range(n_points):
            clean = draw(st.booleans())
            points.append({
                "vdd": 0.6 + 0.05 * i,
                "injector": (
                    None if clean
                    else WeightFaultInjector([_rates(1e-2, 4e-3)] * 2)
                ),
                "n_trials": draw(st.integers(min_value=1, max_value=4)),
                "seed": draw(st.one_of(
                    st.none(), st.integers(min_value=0, max_value=1000)
                )),
                "label": f"point-{i}",
            })
        jobs = nn_fault_eval_jobs(MODEL, points)
    return draw(st.sampled_from(jobs))


class TestMultiKindWire:
    @given(job=any_kind_jobs())
    @settings(max_examples=60, deadline=None)
    def test_wire_round_trip_through_json(self, job):
        """Every kind survives the actual wire: to_wire → JSON text →
        from_wire reconstructs an equal job (validators and all)."""
        line = json.dumps(job.to_wire())
        assert ShardJob.from_wire(json.loads(line)) == job

    @given(job=any_kind_jobs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_missing_wire_field_rejected(self, job, data):
        wire = job.to_wire()
        del wire[data.draw(st.sampled_from(sorted(wire)))]
        with pytest.raises(ConfigurationError, match="lacks fields"):
            ShardJob.from_wire(wire)

    @given(job=any_kind_jobs(), kind=st.text(max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_unknown_kinds_rejected(self, job, kind):
        if kind in registered_job_kinds():
            return
        wire = {**job.to_wire(), "kind": kind}
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            ShardJob.from_wire(wire)

    def test_all_four_kinds_registered(self):
        assert set(registered_job_kinds()) >= {
            "margin_tally", "is_shard", "fault_block", "nn_fault_eval",
        }

    def test_register_job_kind_validator_runs_at_construction(self):
        def reject_odd(spec):
            if spec.get("n") % 2:
                raise ConfigurationError("n must be even")

        register_job_kind("test_parity", lambda job: job.spec["n"],
                          validate_spec=reject_odd)
        try:
            good = ShardJob(
                job_id="t-0", kind="test_parity", spec={"n": 2},
                shard_index=0,
                shard={"start_block": 0, "n_blocks": 1, "n_samples": 1},
                block_samples=1, namespace="test", payload={"n": 2},
            )
            assert execute_job(good, store=None) == (2, False)
            with pytest.raises(ConfigurationError, match="must be even"):
                ShardJob(
                    job_id="t-1", kind="test_parity", spec={"n": 3},
                    shard_index=0,
                    shard={"start_block": 0, "n_blocks": 1, "n_samples": 1},
                    block_samples=1, namespace="test", payload={"n": 3},
                )
        finally:
            _JOB_KINDS.pop("test_parity", None)


class TestMalformedSpecs:
    """Every new kind's validator fires at construction, not on a worker."""

    def _mutated(self, jobs, **spec_updates):
        wire = jobs[0].to_wire()
        wire["spec"] = {**wire["spec"], **spec_updates}
        return wire

    def test_is_shard_missing_fields(self):
        jobs = is_shard_jobs(_sampler(), [VDD], n_samples=200, seed=1)
        wire = jobs[0].to_wire()
        wire["spec"] = {
            k: v for k, v in wire["spec"].items() if k != "failure_type"
        }
        with pytest.raises(ConfigurationError, match="missing fields"):
            ShardJob.from_wire(wire)

    @pytest.mark.parametrize("updates,match", [
        ({"vdd": -0.7}, "vdd"),
        ({"vdd": True}, "vdd"),
        ({"n_samples": 50}, "n_samples"),
        ({"n_samples": 200.0}, "n_samples"),
        ({"seed": -1}, "seed"),
        ({"max_shift_sigma": 0}, "max_shift_sigma"),
        ({"failure_type": "meltdown"}, "failure_type"),
    ])
    def test_is_shard_bad_values(self, updates, match):
        jobs = is_shard_jobs(_sampler(), [VDD], n_samples=200, seed=1)
        with pytest.raises(ConfigurationError, match=match):
            ShardJob.from_wire(self._mutated(jobs, **updates))

    def test_fault_block_empty_specs(self):
        specs = [FaultTrialSpec(injector=None, n_trials=1, seed=0)]
        jobs = fault_block_jobs(MODEL, specs, blocks=1)
        with pytest.raises(ConfigurationError, match="non-empty"):
            ShardJob.from_wire(self._mutated(jobs, specs=[]))

    def test_fault_block_bad_model_spec(self):
        specs = [FaultTrialSpec(injector=None, n_trials=1, seed=0)]
        jobs = fault_block_jobs(MODEL, specs, blocks=1)
        bad_model = {k: v for k, v in MODEL.items() if k != "epochs"}
        with pytest.raises(ConfigurationError, match="missing fields"):
            ShardJob.from_wire(self._mutated(jobs, model=bad_model))

    def test_fault_block_bad_trial_spec(self):
        specs = [FaultTrialSpec(injector=None, n_trials=1, seed=0)]
        jobs = fault_block_jobs(MODEL, specs, blocks=1)
        wire = self._mutated(jobs)
        wire["spec"]["specs"] = [
            {**wire["spec"]["specs"][0], "n_trials": 0}
        ]
        with pytest.raises(ConfigurationError, match="n_trials"):
            ShardJob.from_wire(wire)

    @pytest.mark.parametrize("updates,match", [
        ({"rates": []}, "rates"),
        ({"rates": [{"vdd": 0.7}]}, "."),
        ({"n_trials": 0}, "n_trials"),
        ({"seed": "entropy"}, "seed"),
        ({"vdd": -1.0}, "vdd"),
        ({"label": 7}, "label"),
    ])
    def test_nn_fault_eval_bad_values(self, updates, match):
        jobs = nn_fault_eval_jobs(MODEL, [{"vdd": VDD, "injector": None,
                                           "n_trials": 1, "seed": 0}])
        with pytest.raises(ConfigurationError, match=match):
            ShardJob.from_wire(self._mutated(jobs, **updates))

    def test_point_without_vdd_rejected(self):
        with pytest.raises(ConfigurationError, match="lacks a vdd"):
            nn_fault_eval_jobs(MODEL, [{"injector": None}])

    def test_sampler_spec_not_reconstructible_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="not reconstructible"):
            sampler_from_spec({"technology": {}, "kind": "6t"})

    def test_store_addresses_disjoint_across_kinds(self):
        """The four kinds write to four namespaces: a fleet mixing
        workloads can never alias one kind's result into another's."""
        is_jobs = is_shard_jobs(_sampler(), [VDD], n_samples=200, seed=1)
        fb_jobs = fault_block_jobs(
            MODEL, [FaultTrialSpec(injector=None, n_trials=1, seed=0)]
        )
        nn_jobs = nn_fault_eval_jobs(MODEL, [{"vdd": VDD, "injector": None}])
        resolved = _resolved_analyzer()
        mt_jobs = margin_tally_jobs(
            resolved, VDD, resolved.shard_plan(shards=1)
        )
        namespaces = {
            job.namespace
            for job in [*is_jobs, *fb_jobs, *nn_jobs, *mt_jobs]
        }
        assert namespaces == {"is", "faultblock", "nnfault", "mcshard"}


# ----------------------------------------------------------------------
# In-process execution of every kind (the worker's compute functions,
# checked against the library's direct call paths)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def model_cache(tmp_path_factory):
    """Private weight cache: the tiny model trains once per module."""
    path = str(tmp_path_factory.mktemp("jobs-cache"))
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = path
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


class TestExecuteAllKinds:
    def test_is_shard_matches_local_estimate_sweep(self):
        """A fleet's is_shard answers are the bytes a local sweep
        produces — same estimator rebuild, same per-point seed."""
        sampler = _sampler()
        vdds = [0.65, VDD]
        jobs = is_shard_jobs(sampler, vdds, n_samples=200, seed=11)
        local = sampler.estimate_sweep(vdds, n_samples=200, seed=11)
        for job, reference in zip(jobs, local):
            value, cached = execute_job(job, store=None)
            assert cached is False
            assert value == reference.to_dict()

    def test_fault_block_concatenates_to_direct_batch(self, model_cache):
        model = model_from_spec(MODEL)
        injector = WeightFaultInjector(
            [_rates(5e-3, 2e-3)] * model.image.n_layers
        )
        specs = [
            FaultTrialSpec(injector=injector, n_trials=1, seed=s)
            for s in range(3)
        ] + [FaultTrialSpec(injector=None, n_trials=1, seed=None)]
        jobs = fault_block_jobs(MODEL, specs, blocks=2)
        blocks = [execute_job(job, store=None)[0] for job in jobs]
        reference = [
            e.to_dict()
            for e in evaluate_many_under_faults(
                model.network, model.image, specs,
                model.dataset.x_test, model.dataset.y_test,
            )
        ]
        assert concat_blocks(blocks) == reference

    def test_nn_fault_eval_matches_direct_evaluation(self, model_cache):
        model = model_from_spec(MODEL)
        injector = WeightFaultInjector(
            [_rates(1e-2, 4e-3)] * model.image.n_layers
        )
        (job,) = nn_fault_eval_jobs(MODEL, [
            {"vdd": VDD, "injector": injector, "n_trials": 2, "seed": 7,
             "label": "hybrid"},
        ])
        value, cached = execute_job(job, store=None)
        assert cached is False
        reference = evaluate_under_faults(
            model.network, model.image, injector,
            model.dataset.x_test, model.dataset.y_test,
            n_trials=2, seed=7,
        )
        assert value == {
            "vdd": VDD, "label": "hybrid", "evaluation": reference.to_dict(),
        }
