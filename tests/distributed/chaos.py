"""Deterministic chaos harness for the distributed dispatcher.

The acceptance contract of the whole subsystem is *exactness under
failure*: a job list dispatched to a fleet where workers die, stall,
corrupt their streams or drop their connections mid-run must merge
byte-identically to a single-process oracle.  This module provides the
machinery the property suites (``test_chaos.py``) drive:

* :class:`ChaosEvent` / :class:`ChaosSchedule` — a declarative,
  JSON-able failure plan: *worker i misbehaves with action A after
  completing N jobs*.  The schedule is deterministic **per worker**;
  which jobs land on which worker is a genuine race, which is the
  point — the asserted property (oracle equality) must hold for every
  interleaving, so the tests never pin one.
* :class:`ChaosWorker` — a scripted JSON-lines peer that executes
  *real* jobs (via :func:`~repro.distributed.jobs.execute_job`, off its
  event loop so heartbeats flow while computing) until its scheduled
  event fires.
* :func:`run_chaos_fleet` — spin a dispatcher plus a scheduled fleet
  (always including one well-behaved *anchor* worker, so progress is
  guaranteed), dispatch the jobs, and return the merged result with
  the dispatcher's stats.  With ``CHAOS_ARTIFACT_DIR`` set, every run
  drops a JSON artifact pairing the schedule with the digest of the
  merged output — the CI chaos drill uploads these, so a red run ships
  its own reproduction recipe.

Chaos actions
-------------
``kill``
    Stop heartbeating with the connection held open (a SIGKILL as the
    dispatcher observes it); the heartbeat watchdog retires the worker
    and requeues its job.
``stall``
    Keep heartbeating but sit on the assignment for
    ``stall_seconds`` before reporting the (correct) result — the
    straggler scenario speculation exists for.  The worker stays in
    the fleet afterwards.
``corrupt``
    Send a non-JSON line instead of the result.  The dispatcher cannot
    resynchronize a corrupted line stream, so it drops the connection
    and requeues the held job.  (Corrupting the *value* is out of
    scope by design: workers are trusted to be correct, and the
    store's content addressing dedupes — it does not checksum.)
``disconnect``
    Drop the TCP connection mid-job.

Every action reduces to the same recovery path — recompute is free,
results are content-addressed and bit-identical — which is exactly
what the property tests verify.

Scale events
------------
Beyond misbehaviour, a schedule can carry :class:`ChaosScaleEvent`
entries — *when the fleet has completed N jobs, spawn K fresh workers /
drain K live ones* — replaying what an autoscaler does to a fleet
mid-run.  Spawned workers are well-behaved (optionally with a
``max_jobs`` drain budget, like autoscaled workers); drained workers go
through the worker's own graceful path (``shutdown`` + dispatcher
acknowledgment), so an in-flight assignment requeues without burning a
retry.  The asserted property is unchanged: the merged bytes must equal
the oracle no matter how the pool breathes.
"""

import asyncio
import dataclasses
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.distributed import DirectoryStore, ShardDispatcher
from repro.distributed.jobs import ShardJob, execute_job
from repro.distributed.protocol import PROTOCOL_VERSION, STREAM_LIMIT

from tests.distributed.conftest import HEARTBEAT_INTERVAL, HEARTBEAT_TIMEOUT

#: The vocabulary of scheduled misbehaviour (see module docstring).
CHAOS_ACTIONS = ("kill", "stall", "corrupt", "disconnect")


@dataclass(frozen=True)
class ChaosEvent:
    """Worker ``worker`` performs ``action`` after ``after_jobs`` clean
    completions (i.e. on its ``after_jobs + 1``-th assignment)."""

    worker: int
    after_jobs: int
    action: str

    def __post_init__(self):
        if self.action not in CHAOS_ACTIONS:
            raise ValueError(f"unknown chaos action {self.action!r}")
        if self.worker < 0 or self.after_jobs < 0:
            raise ValueError("worker and after_jobs must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {"worker": self.worker, "after_jobs": self.after_jobs,
                "action": self.action}


@dataclass(frozen=True)
class ChaosScaleEvent:
    """When the fleet has completed ``at_completed`` jobs, ``spawn``
    ``workers`` fresh well-behaved workers (each with an optional
    ``max_jobs`` drain budget) or gracefully ``drain`` ``workers`` live
    non-anchor workers."""

    at_completed: int
    action: str
    workers: int = 1
    max_jobs: Optional[int] = None

    def __post_init__(self):
        if self.action not in ("spawn", "drain"):
            raise ValueError(f"unknown scale action {self.action!r}")
        if self.at_completed < 0 or self.workers < 1:
            raise ValueError("at_completed must be >= 0 and workers >= 1")
        if self.max_jobs is not None and (
            self.action != "spawn" or self.max_jobs < 1
        ):
            raise ValueError("max_jobs needs action='spawn' and a count >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {"at_completed": self.at_completed, "action": self.action,
                "workers": self.workers, "max_jobs": self.max_jobs}


@dataclass(frozen=True)
class ChaosSchedule:
    """A full failure plan: at most one event per worker index."""

    events: Tuple[ChaosEvent, ...]
    stall_seconds: float = 1.0
    scale_events: Tuple[ChaosScaleEvent, ...] = ()

    def __post_init__(self):
        workers = [event.worker for event in self.events]
        if len(set(workers)) != len(workers):
            raise ValueError("at most one chaos event per worker")

    def event_for(self, worker: int) -> Optional[ChaosEvent]:
        for event in self.events:
            if event.worker == worker:
                return event
        return None

    @property
    def n_workers(self) -> int:
        """Smallest fleet that realizes every scheduled event."""
        return 1 + max((event.worker for event in self.events), default=-1)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": [event.to_dict() for event in self.events],
            "stall_seconds": self.stall_seconds,
            "scale_events": [event.to_dict() for event in self.scale_events],
        }

    def describe(self) -> str:
        parts = [
            f"w{event.worker}:{event.action}@{event.after_jobs}"
            for event in self.events
        ] + [
            f"fleet:{event.action}x{event.workers}@{event.at_completed}"
            for event in self.scale_events
        ]
        return ", ".join(parts) if parts else "no chaos"


class ChaosWorker:
    """A real-computation worker that misbehaves exactly once, on cue.

    Speaks the genuine wire protocol over localhost TCP and executes
    assignments with :func:`execute_job` on a thread-pool executor (so
    heartbeats flow during computation, like the production worker).
    With ``event=None`` it is a well-behaved fleet member — the anchor.
    """

    def __init__(self, host, port, store_dir=None, name="chaos",
                 event=None, stall_seconds=1.0, max_jobs=None):
        self.host, self.port = host, port
        self.store = None if store_dir is None else DirectoryStore(store_dir)
        self.name = name
        self.event = event
        self.stall_seconds = stall_seconds
        self.max_jobs = max_jobs
        self.completed = 0
        self.acted = False
        self.drained = False
        self._drain = threading.Event()
        self._done = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    @property
    def running(self) -> bool:
        """Still serving: neither finished nor asked to drain."""
        return not self._done.is_set() and not self._drain.is_set()

    def request_drain(self):
        """Ask the worker to drain gracefully before its next job."""
        self._drain.set()

    def _run(self):
        try:
            asyncio.run(self._script())
        except (ConnectionError, OSError):
            pass  # dispatcher tore the stream down first; expected
        finally:
            self._done.set()

    async def _script(self):
        reader, writer = await asyncio.open_connection(
            self.host, self.port, limit=STREAM_LIMIT
        )
        lock = asyncio.Lock()

        async def send(payload):
            async with lock:
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()

        async def recv():
            raw = await reader.readline()
            return json.loads(raw) if raw.strip() else None

        async def heartbeats(interval):
            try:
                while True:
                    await asyncio.sleep(interval)
                    await send({"type": "heartbeat"})
            except (ConnectionError, OSError):
                pass

        beat = None
        loop = asyncio.get_running_loop()
        try:
            await send({"type": "register", "name": self.name,
                        "pid": 0, "protocol": PROTOCOL_VERSION})
            welcome = await recv()
            assert welcome and welcome["type"] == "welcome", welcome
            interval = float(welcome.get("heartbeat_interval", 1.0))
            beat = asyncio.create_task(heartbeats(interval))
            while True:
                over_budget = (
                    self.max_jobs is not None
                    and self.completed >= self.max_jobs
                )
                if over_budget or self._drain.is_set():
                    # The worker's graceful drain: announce shutdown and
                    # wait for the dispatcher's acknowledgment so a
                    # crossed assignment requeues (free of charge)
                    # before the stream drops.
                    await send({"type": "shutdown"})
                    try:
                        while True:
                            ack = await asyncio.wait_for(recv(), timeout=10)
                            if ack is None or ack.get("type") == "shutdown":
                                break
                    except asyncio.TimeoutError:
                        pass
                    self.drained = True
                    return
                await send({"type": "ready"})
                message = await recv()
                if message is None or message["type"] != "assign":
                    return
                job = ShardJob.from_wire(message["job"])
                due = (
                    self.event is not None and not self.acted
                    and self.completed >= self.event.after_jobs
                )
                if due:
                    self.acted = True
                    action = self.event.action
                    if action == "kill":
                        # Silence: stop beating, hold the connection,
                        # wait for the watchdog to hang up on us.
                        beat.cancel()
                        await asyncio.wait_for(reader.read(), timeout=30)
                        return
                    if action == "disconnect":
                        return  # finally: closes the transport abruptly
                    if action == "corrupt":
                        async with lock:
                            writer.write(b"\x00garbage{{{ not json\n")
                            await writer.drain()
                        return
                    # "stall": straggle (heartbeats keep flowing), then
                    # report the correct result late and keep serving.
                    await asyncio.sleep(self.stall_seconds)
                value, cached = await loop.run_in_executor(
                    None, execute_job, job, self.store
                )
                await send({"type": "result", "job_id": job.job_id,
                            "value": value, "cached": cached})
                self.completed += 1
        finally:
            if beat is not None:
                beat.cancel()
            writer.close()

    def join(self, timeout=60):
        assert self._done.wait(timeout), (
            f"chaos worker {self.name!r} did not finish"
        )


@dataclass
class ChaosRun:
    """Everything one :func:`run_chaos_fleet` invocation produced."""

    result: Any
    stats: Any  # DispatcherStats
    schedule: ChaosSchedule
    digest: str
    artifact_path: Optional[str] = None
    workers: List[ChaosWorker] = field(default_factory=list)
    #: Wall time of the dispatch alone (fleet spin-up and worker joins
    #: excluded) — what the speculation benchmark compares.
    elapsed_s: float = 0.0
    #: One line per realized scale event ("spawn scale-0" / "drain ...").
    scale_log: List[str] = field(default_factory=list)


def digest_of(value: Any) -> str:
    """SHA-256 of the canonical JSON form — the byte-identity oracle.

    Objects with ``to_dict`` serialize through it, so merged tallies
    and decoded results digest the same way their wire forms do;
    ``to_payload`` (characterization tables) and plain dataclasses
    (``CellTables``) are handled too, so whole DAG result dicts digest
    directly.
    """

    def canonical(obj: Any) -> Any:
        if hasattr(obj, "to_dict"):
            return canonical(obj.to_dict())
        if hasattr(obj, "to_payload"):
            return canonical(obj.to_payload())
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return {
                f.name: canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            }
        if isinstance(obj, dict):
            return {str(k): canonical(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [canonical(v) for v in obj]
        return obj

    text = json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def record_artifact(
    schedule: ChaosSchedule, jobs: Sequence[ShardJob], digest: str, stats: Any
) -> Optional[str]:
    """Drop one run's reproduction recipe under ``CHAOS_ARTIFACT_DIR``.

    No-op (returns ``None``) when the variable is unset — local runs
    stay clean; the CI chaos drill sets it and uploads the directory.
    """
    art_dir = os.environ.get("CHAOS_ARTIFACT_DIR")
    if not art_dir:
        return None
    os.makedirs(art_dir, exist_ok=True)
    doc = {
        "schedule": schedule.to_dict(),
        "jobs": [{"job_id": job.job_id, "kind": job.kind} for job in jobs],
        "merged_digest": digest,
        "stats": stats.to_dict(),
    }
    tag = hashlib.sha256(
        json.dumps(doc["schedule"], sort_keys=True).encode()
        + digest.encode()
    ).hexdigest()[:12]
    path = os.path.join(art_dir, f"chaos-{jobs[0].kind}-{tag}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
    return path


def run_chaos_fleet(
    jobs: Sequence[ShardJob],
    schedule: ChaosSchedule,
    store_dir: Optional[str] = None,
    decode=None,
    merge=None,
    timeout: float = 120.0,
    **dispatcher_kwargs,
) -> ChaosRun:
    """Dispatch ``jobs`` to a fleet realizing ``schedule``; return the run.

    The fleet is one :class:`ChaosWorker` per scheduled worker index
    plus one anchor (no event), so every job completes as long as the
    retry budget covers the scheduled failures — which it does by
    default: each worker fires at most one event, so ``max_retries``
    defaults to ``len(schedule.events) + 1``.

    Speculation defaults to a fixed threshold of half the stall time,
    so every ``stall`` event is speculation-eligible; pass
    ``speculate=False`` (or any dispatcher knob) to override.
    """
    dispatcher_kwargs.setdefault("heartbeat_interval", HEARTBEAT_INTERVAL)
    dispatcher_kwargs.setdefault("heartbeat_timeout", HEARTBEAT_TIMEOUT)
    dispatcher_kwargs.setdefault("max_retries", len(schedule.events) + 1)
    dispatcher_kwargs.setdefault(
        "speculation_threshold", max(schedule.stall_seconds / 2, 0.05)
    )
    store = None if store_dir is None else DirectoryStore(store_dir)
    workers: List[ChaosWorker] = []
    scale_log: List[str] = []
    stop_driver = threading.Event()
    with ShardDispatcher(store=store, **dispatcher_kwargs) as dispatcher:
        host, port = dispatcher.start()
        for index in range(schedule.n_workers):
            workers.append(ChaosWorker(
                host, port, store_dir, name=f"chaos-{index}",
                event=schedule.event_for(index),
                stall_seconds=schedule.stall_seconds,
            ))
        workers.append(ChaosWorker(host, port, store_dir, name="anchor"))
        dispatcher.await_workers(len(workers), timeout=30)

        def scale_driver():
            """Fire scale events as the fleet's completed count grows."""
            pending = sorted(
                schedule.scale_events, key=lambda e: e.at_completed
            )
            spawned = 0
            while pending and not stop_driver.is_set():
                done = dispatcher.stats.completed
                while pending and done >= pending[0].at_completed:
                    event = pending.pop(0)
                    if event.action == "spawn":
                        for _ in range(event.workers):
                            name = f"scale-{spawned}"
                            spawned += 1
                            workers.append(ChaosWorker(
                                host, port, store_dir, name=name,
                                max_jobs=event.max_jobs,
                            ))
                            scale_log.append(f"spawn {name}@{done}")
                    else:  # drain the youngest live non-anchor workers
                        live = [w for w in workers
                                if w.name != "anchor" and w.running]
                        for worker in live[-event.workers:]:
                            worker.request_drain()
                            scale_log.append(f"drain {worker.name}@{done}")
                time.sleep(0.02)

        driver = threading.Thread(target=scale_driver, daemon=True)
        driver.start()
        start = time.perf_counter()
        result = dispatcher.dispatch(
            jobs, decode=decode, merge=merge, timeout=timeout
        )
        elapsed = time.perf_counter() - start
        stop_driver.set()
        driver.join(timeout=10)
        stats = dispatcher.stats
    for worker in workers:
        worker.join()
    digest = digest_of(result)
    artifact = record_artifact(schedule, jobs, digest, stats)
    return ChaosRun(
        result=result, stats=stats, schedule=schedule,
        digest=digest, artifact_path=artifact, workers=workers,
        elapsed_s=elapsed, scale_log=scale_log,
    )


def run_chaos_dag(
    dag,
    schedule: ChaosSchedule,
    store_dir: Optional[str] = None,
    timeout: float = 180.0,
    **dispatcher_kwargs,
) -> ChaosRun:
    """Execute a :class:`~repro.distributed.dag.DagRun` on a chaos fleet.

    The acceptance scenario of the autoscaling PR: the cross-kind
    pipeline runs through one dispatcher while the schedule's scale
    events grow and drain the pool mid-run (and any misbehaviour events
    fire), and the node results — keyed by node name in
    ``ChaosRun.result`` — must digest identically to the single-process
    phase-by-phase oracle.
    """
    dispatcher_kwargs.setdefault("heartbeat_interval", HEARTBEAT_INTERVAL)
    dispatcher_kwargs.setdefault("heartbeat_timeout", HEARTBEAT_TIMEOUT)
    dispatcher_kwargs.setdefault("max_retries", len(schedule.events) + 1)
    dispatcher_kwargs.setdefault(
        "speculation_threshold", max(schedule.stall_seconds / 2, 0.05)
    )
    store = None if store_dir is None else DirectoryStore(store_dir)
    workers: List[ChaosWorker] = []
    scale_log: List[str] = []
    stop_driver = threading.Event()
    with ShardDispatcher(store=store, **dispatcher_kwargs) as dispatcher:
        host, port = dispatcher.start()
        for index in range(schedule.n_workers):
            workers.append(ChaosWorker(
                host, port, store_dir, name=f"chaos-{index}",
                event=schedule.event_for(index),
                stall_seconds=schedule.stall_seconds,
            ))
        workers.append(ChaosWorker(host, port, store_dir, name="anchor"))
        dispatcher.await_workers(len(workers), timeout=30)

        def scale_driver():
            pending = sorted(
                schedule.scale_events, key=lambda e: e.at_completed
            )
            spawned = 0
            while pending and not stop_driver.is_set():
                done = dispatcher.stats.completed
                while pending and done >= pending[0].at_completed:
                    event = pending.pop(0)
                    if event.action == "spawn":
                        for _ in range(event.workers):
                            name = f"scale-{spawned}"
                            spawned += 1
                            workers.append(ChaosWorker(
                                host, port, store_dir, name=name,
                                max_jobs=event.max_jobs,
                            ))
                            scale_log.append(f"spawn {name}@{done}")
                    else:
                        live = [w for w in workers
                                if w.name != "anchor" and w.running]
                        for worker in live[-event.workers:]:
                            worker.request_drain()
                            scale_log.append(f"drain {worker.name}@{done}")
                time.sleep(0.02)

        driver = threading.Thread(target=scale_driver, daemon=True)
        driver.start()
        start = time.perf_counter()
        result = dag.run(dispatcher, timeout=timeout)
        elapsed = time.perf_counter() - start
        stop_driver.set()
        driver.join(timeout=10)
        stats = dispatcher.stats
    for worker in workers:
        worker.join()
    return ChaosRun(
        result=result, stats=stats, schedule=schedule,
        digest=digest_of(result), workers=workers,
        elapsed_s=elapsed, scale_log=scale_log,
    )
