"""Chaos properties: every job kind merges exactly under any failure mix.

The subsystem's acceptance bar, stated as hypothesis properties: for
every registered job kind and *any* deterministic schedule of worker
misbehaviour (kill / stall / corrupt / disconnect, at any point in each
worker's job stream), the dispatched-and-merged output is byte-identical
to executing the same jobs in a single process.  Speculation, retries
and store dedupe may all fire along the way — none of them may change a
byte.

The oracle is uniform across kinds: run every job in-process with
:func:`~repro.distributed.jobs.execute_job`, apply the same
decode/merge the dispatcher would, digest the canonical JSON.
"""

import json
import os
import tempfile
from functools import lru_cache, reduce

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.devices import ptm22
from repro.distributed.jobs import (
    benchmark_model_spec,
    concat_blocks,
    execute_job,
    fault_block_jobs,
    is_shard_jobs,
    margin_tally_jobs,
    model_from_spec,
    nn_fault_eval_jobs,
)
from repro.fault.evaluate import FaultTrialSpec
from repro.fault.injector import WeightFaultInjector
from repro.fault.model import BitErrorRates
from repro.sram import make_cell
from repro.sram.importance_sampling import (
    ImportanceSampler,
    ImportanceSamplingResult,
)
from repro.sram.montecarlo import MarginTally, MonteCarloAnalyzer

from tests.distributed.chaos import (
    CHAOS_ACTIONS,
    ChaosEvent,
    ChaosScaleEvent,
    ChaosSchedule,
    digest_of,
    run_chaos_dag,
    run_chaos_fleet,
)
from tests.distributed.conftest import BLOCK_SAMPLES, N_SAMPLES

VDD = 0.7

#: Tiny benchmark model: trains in seconds, npz-cached after the first
#: build, and still exercises the full quantize→inject→evaluate path.
MODEL = benchmark_model_spec(
    profile="fast", n_train=120, n_val=40, n_test=160, epochs=1
)


@pytest.fixture(scope="module", autouse=True)
def _module_cache(tmp_path_factory):
    """One shared REPRO_CACHE_DIR for the module: the benchmark model
    trains once, then every worker (and oracle) loads cached weights."""
    path = str(tmp_path_factory.mktemp("chaos-cache"))
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = path
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


def oracle_for(jobs, decode=None, merge=None):
    """Single-process reference: execute, decode, fold — dispatcher-free."""
    values = [execute_job(job, None)[0] for job in jobs]
    if decode is not None:
        values = [decode(v) for v in values]
    if merge is None:
        return values
    return reduce(lambda acc, head: merge([acc, head]), values)


@lru_cache(maxsize=None)
def margin_case():
    analyzer = MonteCarloAnalyzer(
        cell=make_cell("6t", ptm22()),
        n_samples=N_SAMPLES, block_samples=BLOCK_SAMPLES,
    )
    resolved = analyzer.resolved()
    jobs = tuple(margin_tally_jobs(resolved, VDD, resolved.shard_plan(shards=4)))
    oracle = oracle_for(jobs, decode=MarginTally.from_dict,
                        merge=MarginTally.merge)
    return jobs, digest_of(oracle)


@lru_cache(maxsize=None)
def is_case():
    sampler = ImportanceSampler(make_cell("6t", ptm22()))
    jobs = tuple(is_shard_jobs(sampler, [0.65, VDD], n_samples=200, seed=11))
    oracle = oracle_for(jobs, decode=ImportanceSamplingResult.from_dict)
    return jobs, digest_of(oracle)


def _rates():
    return BitErrorRates(
        vdd=VDD, n_bits=8, msb_in_8t=2,
        p_read=np.full(8, 5e-3), p_write=np.full(8, 2e-3),
    )


@lru_cache(maxsize=None)
def fault_case():
    model = model_from_spec(MODEL)  # warms the weight cache for the fleet
    injector = WeightFaultInjector([_rates()] * model.image.n_layers)
    specs = [FaultTrialSpec(injector=injector, n_trials=2, seed=s)
             for s in range(4)]
    specs.append(FaultTrialSpec(injector=None, n_trials=1, seed=0))
    jobs = tuple(fault_block_jobs(MODEL, specs, blocks=3))
    oracle = oracle_for(jobs, merge=concat_blocks)
    return jobs, digest_of(oracle)


@lru_cache(maxsize=None)
def nn_case():
    model = model_from_spec(MODEL)
    injector = WeightFaultInjector([_rates()] * model.image.n_layers)
    jobs = tuple(nn_fault_eval_jobs(MODEL, [
        {"vdd": VDD, "injector": injector, "n_trials": 2, "seed": 3,
         "label": "hybrid"},
        {"vdd": VDD, "injector": None, "n_trials": 1, "seed": 0,
         "label": "baseline"},
    ]))
    oracle = oracle_for(jobs)
    return jobs, digest_of(oracle)


class _LocalDispatcher:
    """Duck-typed stand-in for a DAG's dispatcher: every job node runs
    through the same in-process oracle as the flat cases."""

    def dispatch(self, jobs, decode=None, merge=None, timeout=None,
                 client="default", priority=0):
        return oracle_for(jobs, decode=decode, merge=merge)


@lru_cache(maxsize=None)
def dag_case():
    from repro.distributed.dag import paper_pipeline_dag

    model_from_spec(MODEL)  # warms the weight cache for the fleet
    dag = paper_pipeline_dag(
        MODEL, [0.65, VDD], rows=64, n_samples=N_SAMPLES,
        block_samples=BLOCK_SAMPLES, shards=3, n_trials=1, eval_seed=5,
        run_id="chaosdag",
    )
    return dag, digest_of(dag.run(_LocalDispatcher()))


@st.composite
def schedules(draw, max_workers=2, max_after=2, stall_seconds=0.6):
    """Any failure plan for a small fleet: 0..max_workers misbehaving
    workers, each with any action at any point in its job stream."""
    n = draw(st.integers(min_value=0, max_value=max_workers))
    events = tuple(
        ChaosEvent(
            worker=index,
            after_jobs=draw(st.integers(min_value=0, max_value=max_after)),
            action=draw(st.sampled_from(CHAOS_ACTIONS)),
        )
        for index in range(n)
    )
    return ChaosSchedule(events=events, stall_seconds=stall_seconds)


CHAOS_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_and_check(case, schedule, decode=None, merge=None, **kwargs):
    jobs, oracle_digest = case()
    with tempfile.TemporaryDirectory() as store_dir:
        run = run_chaos_fleet(
            jobs, schedule, store_dir, decode=decode, merge=merge, **kwargs
        )
    assert run.digest == oracle_digest, (
        f"merge diverged from the single-process oracle under "
        f"[{schedule.describe()}]"
    )
    # Exactly one accepted answer per job, however many were computed.
    assert run.stats.completed == len(jobs)
    return run


class TestChaosProperties:
    @given(schedule=schedules())
    @settings(max_examples=6, **CHAOS_SETTINGS)
    def test_margin_tally_merges_exactly(self, schedule):
        run_and_check(margin_case, schedule,
                      decode=MarginTally.from_dict, merge=MarginTally.merge)

    @given(schedule=schedules(max_after=1))
    @settings(max_examples=4, **CHAOS_SETTINGS)
    def test_is_shard_merges_exactly(self, schedule):
        run_and_check(is_case, schedule,
                      decode=ImportanceSamplingResult.from_dict)

    @given(schedule=schedules(max_after=1))
    @settings(max_examples=3, **CHAOS_SETTINGS)
    def test_fault_block_merges_exactly(self, schedule):
        run_and_check(fault_case, schedule, merge=concat_blocks)

    @given(schedule=schedules(max_after=1))
    @settings(max_examples=3, **CHAOS_SETTINGS)
    def test_nn_fault_eval_merges_exactly(self, schedule):
        run_and_check(nn_case, schedule)


class TestChaosScenarios:
    """Pinned single-failure regressions (each action exercised once,
    with the stats assertions the property tests cannot make)."""

    def test_kill_on_first_assignment_is_reassigned(self):
        schedule = ChaosSchedule(
            events=(ChaosEvent(worker=0, after_jobs=0, action="kill"),)
        )
        run = run_and_check(margin_case, schedule,
                            decode=MarginTally.from_dict,
                            merge=MarginTally.merge)
        assert run.stats.retries >= 1
        assert run.stats.workers_lost >= 1

    def test_stall_triggers_speculation_and_backup_wins(self):
        """The straggler scenario speculation exists for: one worker
        sits on its shard for 2 s; with a 0.2 s cutoff the dispatcher
        duplicates the job onto the idle anchor, whose answer wins."""
        schedule = ChaosSchedule(
            events=(ChaosEvent(worker=0, after_jobs=0, action="stall"),),
            stall_seconds=2.0,
        )
        run = run_and_check(margin_case, schedule,
                            decode=MarginTally.from_dict,
                            merge=MarginTally.merge,
                            speculation_threshold=0.2)
        assert run.stats.speculations >= 1
        assert run.stats.speculative_wins >= 1
        assert run.stats.retries == 0  # speculation never burns retries
        assert run.stats.failures == 0

    def test_corrupt_stream_is_survived(self):
        schedule = ChaosSchedule(
            events=(ChaosEvent(worker=0, after_jobs=0, action="corrupt"),)
        )
        run = run_and_check(margin_case, schedule,
                            decode=MarginTally.from_dict,
                            merge=MarginTally.merge)
        assert run.stats.retries >= 1

    def test_disconnect_is_survived(self):
        schedule = ChaosSchedule(
            events=(ChaosEvent(worker=0, after_jobs=0, action="disconnect"),)
        )
        run = run_and_check(margin_case, schedule,
                            decode=MarginTally.from_dict,
                            merge=MarginTally.merge)
        assert run.stats.retries >= 1

    def test_is_jobs_match_local_estimate_sweep_under_chaos(self):
        """Cross-path identity: a chaos fleet's is_shard answers equal
        the local estimate_sweep numbers (same seed derivation)."""
        jobs, _ = is_case()
        schedule = ChaosSchedule(
            events=(ChaosEvent(worker=0, after_jobs=0, action="kill"),)
        )
        with tempfile.TemporaryDirectory() as store_dir:
            run = run_chaos_fleet(
                jobs, schedule, store_dir,
                decode=ImportanceSamplingResult.from_dict,
            )
        sampler = ImportanceSampler(make_cell("6t", ptm22()))
        local = sampler.estimate_sweep([0.65, VDD], n_samples=200, seed=11)
        assert [r.to_dict() for r in run.result] == [
            r.to_dict() for r in local
        ]


class TestDagScaleScenario:
    """The PR's acceptance scenario: the full paper pipeline runs as
    one DAG through one dispatcher while the fleet is killed, grown and
    drained mid-run — and not a byte moves."""

    def test_dag_scale_up_and_drain_mid_run_is_byte_identical(self):
        dag, oracle_digest = dag_case()
        schedule = ChaosSchedule(
            events=(ChaosEvent(worker=0, after_jobs=1, action="kill"),),
            scale_events=(
                ChaosScaleEvent(at_completed=2, action="spawn",
                                workers=2, max_jobs=3),
                ChaosScaleEvent(at_completed=6, action="drain", workers=1),
            ),
        )
        with tempfile.TemporaryDirectory() as store_dir:
            run = run_chaos_dag(dag, schedule, store_dir)
        assert run.digest == oracle_digest, (
            f"DAG merge diverged from the phase-by-phase oracle under "
            f"[{schedule.describe()}]"
        )
        # 2 kinds x 2 vdds x 3 margin shards + 2 hybrid + 1 baseline.
        assert run.stats.completed == 15
        assert run.stats.retries >= 1        # the kill's requeue
        assert run.stats.workers_lost >= 1
        assert any(line.startswith("spawn") for line in run.scale_log)
        assert any(line.startswith("drain") for line in run.scale_log)

    def test_scale_event_validation(self):
        with pytest.raises(ValueError, match="unknown scale action"):
            ChaosScaleEvent(at_completed=0, action="replace")
        with pytest.raises(ValueError, match="max_jobs"):
            ChaosScaleEvent(at_completed=0, action="drain", max_jobs=2)
        with pytest.raises(ValueError, match="workers >= 1"):
            ChaosScaleEvent(at_completed=0, action="spawn", workers=0)


class TestHarness:
    def test_schedule_rejects_duplicate_workers(self):
        with pytest.raises(ValueError, match="one chaos event per worker"):
            ChaosSchedule(events=(
                ChaosEvent(worker=0, after_jobs=0, action="kill"),
                ChaosEvent(worker=0, after_jobs=1, action="stall"),
            ))

    def test_event_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosEvent(worker=0, after_jobs=0, action="explode")

    def test_artifact_records_schedule_and_digest(self, tmp_path, monkeypatch):
        art_dir = tmp_path / "artifacts"
        monkeypatch.setenv("CHAOS_ARTIFACT_DIR", str(art_dir))
        schedule = ChaosSchedule(
            events=(ChaosEvent(worker=0, after_jobs=0, action="disconnect"),)
        )
        run = run_and_check(margin_case, schedule,
                            decode=MarginTally.from_dict,
                            merge=MarginTally.merge)
        assert run.artifact_path is not None
        with open(run.artifact_path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["merged_digest"] == run.digest
        assert doc["schedule"] == schedule.to_dict()
        assert {j["kind"] for j in doc["jobs"]} == {"margin_tally"}
        assert doc["stats"]["completed"] == len(margin_case()[0])
