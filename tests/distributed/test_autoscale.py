"""Unit tests of the autoscaling controller (:mod:`repro.distributed.autoscale`).

The sizing logic (:func:`desired_workers`) is a pure function and is
tested as one; the controller is driven with injected fakes — a scripted
stats probe, a fake clock and a fake process factory — so every
lifecycle path (spawn, clean drain, crash backoff, idle scale-down,
probe outage) is deterministic.  The real-fleet path is covered by
``examples/autoscale_smoke.py`` (the CI autoscale smoke job) and the
chaos scale-event scenarios.
"""

import threading

import pytest

from repro.distributed.autoscale import (
    AutoscaleController,
    AutoscalePolicy,
    desired_workers,
)
from repro.errors import ConfigurationError, ReproError


def stats_doc(depth=0, inflight=0, mean=None):
    doc = {"queues": {"depth": depth, "inflight": inflight}}
    if mean is not None:
        doc["latency"] = {"samples": 8, "mean": mean, "p50": mean, "max": mean}
    return doc


class TestDesiredWorkers:
    def test_idle_fleet_returns_min_workers(self):
        policy = AutoscalePolicy(min_workers=2, max_workers=6)
        assert desired_workers(stats_doc(), policy) == 2
        assert desired_workers({}, policy) == 2  # probe doc without queues

    def test_backlog_scales_by_backlog_per_worker(self):
        policy = AutoscalePolicy(min_workers=1, max_workers=8,
                                 backlog_per_worker=4)
        assert desired_workers(stats_doc(depth=1), policy) == 1
        assert desired_workers(stats_doc(depth=4), policy) == 1
        assert desired_workers(stats_doc(depth=5), policy) == 2
        assert desired_workers(stats_doc(depth=6, inflight=3), policy) == 3

    def test_latency_signal_scales_a_short_slow_queue(self):
        """Two 30-second jobs cannot drain in 30 s on one worker: the
        latency term asks for two even though the backlog term says one."""
        policy = AutoscalePolicy(min_workers=1, max_workers=8,
                                 backlog_per_worker=4,
                                 target_drain_seconds=30.0)
        assert desired_workers(stats_doc(depth=2), policy) == 1
        assert desired_workers(stats_doc(depth=2, mean=30.0), policy) == 2

    def test_clamped_to_max_workers(self):
        policy = AutoscalePolicy(min_workers=1, max_workers=3,
                                 backlog_per_worker=1)
        assert desired_workers(stats_doc(depth=100), policy) == 3
        assert desired_workers(stats_doc(depth=2, mean=1e6), policy) == 3

    def test_garbage_latency_is_ignored(self):
        policy = AutoscalePolicy(max_workers=8, backlog_per_worker=4)
        for bad in (None, True, "slow", -1.0, 0):
            doc = stats_doc(depth=2)
            doc["latency"] = {"mean": bad}
            assert desired_workers(doc, policy) == 1


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(min_workers=-1),
        dict(min_workers=5, max_workers=4),
        dict(max_workers=0),
        dict(backlog_per_worker=0),
        dict(target_drain_seconds=0),
        dict(drain_max_jobs=0),
        dict(poll_interval=0),
        dict(backoff_base=0),
        dict(backoff_base=2.0, backoff_max=1.0),
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(**kwargs)

    def test_min_workers_zero_is_legal(self):
        assert AutoscalePolicy(min_workers=0).min_workers == 0


class FakeProc:
    """A controllable stand-in for ``subprocess.Popen``."""

    _pid = 4000

    def __init__(self, argv, env=None):
        FakeProc._pid += 1
        self.pid = FakeProc._pid
        self.argv = list(argv)
        self.returncode = None
        self.terminated = False

    def poll(self):
        return self.returncode

    def exit(self, code):
        self.returncode = code

    def terminate(self):
        # SIGTERM lands "immediately" in fake-land; a real worker exits
        # with a signal code, which is why the controller must lean on
        # its `stopping` flag rather than the exit status.
        self.terminated = True
        if self.returncode is None:
            self.returncode = -15

    def kill(self):
        if self.returncode is None:
            self.returncode = -9

    def wait(self, timeout=None):
        if self.returncode is None:
            self.returncode = 0
        return self.returncode


class Harness:
    """An AutoscaleController wired to fakes, plus the fakes themselves."""

    def __init__(self, policy=None, **controller_kwargs):
        self.procs = []
        self.now = 0.0
        self.doc = stats_doc()
        self.fail_probe = None  # set to an exception to break the probe
        self.probed = threading.Event()

        def popen(argv, env=None):
            proc = FakeProc(argv, env=env)
            self.procs.append(proc)
            return proc

        def probe():
            self.probed.set()
            if self.fail_probe is not None:
                raise self.fail_probe
            return self.doc

        self.controller = AutoscaleController(
            "127.0.0.1", 1,
            policy=policy or AutoscalePolicy(
                min_workers=1, max_workers=4, backlog_per_worker=4,
                backoff_base=0.5, backoff_max=4.0,
            ),
            worker_command=lambda name: ["worker-stub", name],
            stats_fn=probe,
            clock=lambda: self.now,
            sleep=lambda s: None,
            popen=popen,
        )

    def actions(self):
        return [event.action for event in self.controller.events]


class TestControllerLifecycle:
    def test_backlog_scales_up_to_desired(self):
        h = Harness()
        h.doc = stats_doc(depth=6, inflight=2)  # backlog 8 -> 2 workers
        decision = h.controller.poll_once()
        assert decision.desired == 2
        assert decision.spawned == 2 and decision.alive == 2
        assert decision.depth == 6 and decision.inflight == 2
        assert h.controller.spawned_total == 2
        assert [p.argv for p in h.procs] == [
            ["worker-stub", "auto-1"], ["worker-stub", "auto-2"],
        ]

    def test_clean_drain_is_respawned_while_backlog_remains(self):
        h = Harness(policy=AutoscalePolicy(drain_max_jobs=2))
        h.doc = stats_doc(depth=8)
        h.controller.poll_once()
        h.procs[0].exit(0)  # hit --max-jobs, drained cleanly
        decision = h.controller.poll_once()
        assert decision.spawned == 1 and decision.alive == 2
        assert h.actions().count("drain") == 1
        assert h.controller.crash_restarts == 0

    def test_crash_respawns_with_exponential_backoff(self):
        h = Harness()
        h.doc = stats_doc(depth=2)  # wants exactly 1 worker
        h.controller.poll_once()
        h.procs[0].exit(1)
        decision = h.controller.poll_once()  # reap crash, backoff gates
        assert h.controller.crash_restarts == 1
        assert decision.spawned == 0 and decision.alive == 0
        h.now = 0.49
        assert h.controller.poll_once().spawned == 0
        h.now = 0.5  # backoff_base elapsed
        assert h.controller.poll_once().spawned == 1
        # A second crash doubles the delay (0.5 -> 1.0 from *now*).
        h.procs[-1].exit(1)
        assert h.controller.poll_once().spawned == 0
        h.now += 0.99
        assert h.controller.poll_once().spawned == 0
        h.now += 0.01
        assert h.controller.poll_once().spawned == 1
        assert h.controller.crash_restarts == 2

    def test_clean_exit_resets_crash_backoff(self):
        h = Harness()
        h.doc = stats_doc(depth=2)
        h.controller.poll_once()
        h.procs[0].exit(1)
        h.controller.poll_once()
        h.now = 0.5
        h.controller.poll_once()
        h.procs[-1].exit(0)  # clean: the pool is healthy again
        h.controller.poll_once()
        h.procs[-1].exit(1)  # next crash starts back at backoff_base
        h.controller.poll_once()
        crash_events = [e for e in h.controller.events if e.action == "crash"]
        assert crash_events[-1].detail.endswith("backoff 0.50s")

    def test_idle_pool_scales_down_to_desired(self):
        h = Harness()
        h.doc = stats_doc(depth=12)  # 3 workers
        h.controller.poll_once()
        assert h.controller.alive == 3
        h.doc = stats_doc()  # fully idle: depth 0, inflight 0
        decision = h.controller.poll_once()
        assert decision.desired == 1 and decision.stopped == 2
        stopped = [p for p in h.procs if p.terminated]
        assert len(stopped) == 2
        # Terminated-by-controller workers reap as drains, not crashes,
        # even though SIGTERM gives them a nonzero exit status.
        h.controller.poll_once()
        assert h.controller.alive == 1
        assert h.controller.crash_restarts == 0
        assert h.actions().count("stop") == 2
        assert h.actions().count("drain") == 2

    def test_busy_pool_never_stops_live_workers(self):
        """Scale-down with work in flight is only "stop respawning":
        terminating a computing worker would requeue its job for free
        but still waste the compute."""
        h = Harness()
        h.doc = stats_doc(depth=12)
        h.controller.poll_once()
        h.doc = stats_doc(depth=0, inflight=1)  # draining, not idle
        decision = h.controller.poll_once()
        assert decision.desired == 1
        assert decision.stopped == 0
        assert not any(p.terminated for p in h.procs)

    @pytest.mark.parametrize("exc", [
        ConnectionError("dispatcher unreachable"),
        # request_stats wraps a refused/vanished dispatcher in the
        # library's own error type — still an outage, never a crash.
        ReproError("cannot reach a server at 127.0.0.1:8417"),
    ])
    def test_probe_outage_keeps_the_pool(self, exc):
        h = Harness()
        h.doc = stats_doc(depth=8)
        h.controller.poll_once()
        h.fail_probe = exc
        decision = h.controller.poll_once()
        assert decision.desired is None
        assert decision.alive == 2  # nothing spawned, nothing stopped
        assert h.controller.stats_errors == 1
        assert h.actions()[-1] == "stats-error"

    def test_drain_terminates_and_reaps_everything(self):
        h = Harness()
        h.doc = stats_doc(depth=16)
        h.controller.poll_once()
        assert h.controller.alive == 4
        h.controller.drain(timeout=1.0)
        assert h.controller.alive == 0
        assert all(p.returncode is not None for p in h.procs)
        assert h.controller.crash_restarts == 0  # stops are not crashes

    def test_run_with_stop_set_drains_immediately(self):
        h = Harness()
        h.doc = stats_doc(depth=8)
        h.controller.poll_once()
        stop = threading.Event()
        stop.set()
        h.controller.run(stop=stop)
        assert h.controller.alive == 0

    def test_start_stop_facade(self):
        h = Harness()
        h.doc = stats_doc(depth=8)
        with h.controller:
            # Wait for the loop's first probe so the poll (and its
            # spawns) deterministically happened before the stop.
            assert h.probed.wait(timeout=5)
        assert h.controller.alive == 0
        assert h.controller.spawned_total >= 2


class TestWorkerCommand:
    def test_default_command_carries_store_wiring(self):
        controller = AutoscaleController(
            "10.0.0.5", 8417,
            policy=AutoscalePolicy(drain_max_jobs=32),
            cache_dir="/tmp/cache", store_url="http://store:9000",
            lru_entries=128, lru_bytes=1 << 20, ttl=0.0,
        )
        cmd = controller._default_worker_command("auto-9")
        joined = " ".join(cmd)
        assert "-m repro.cli worker" in joined
        assert "--connect 10.0.0.5:8417" in joined
        assert "--name auto-9" in joined
        assert "--cache-dir /tmp/cache" in joined
        assert "--store-url http://store:9000" in joined
        assert "--lru-entries 128" in joined
        assert "--lru-bytes 1048576" in joined
        assert "--ttl 0.0" in joined  # ttl=0 is a real tiering request
        assert "--max-jobs 32" in joined

    def test_minimal_command_has_no_store_flags(self):
        controller = AutoscaleController("127.0.0.1", 8417)
        cmd = controller._default_worker_command("auto-1")
        assert "--cache-dir" not in cmd
        assert "--store-url" not in cmd
        assert "--ttl" not in cmd
        assert "--max-jobs" not in cmd
