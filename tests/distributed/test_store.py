"""Tests of the shared cache-store abstraction."""

import pytest

from repro.distributed import CacheStore, DirectoryStore


class TestDirectoryStore:
    def test_round_trip(self, tmp_path):
        store = DirectoryStore(str(tmp_path / "s"))
        payload = {"cell": "6t", "vdd": 0.7, "seed": 3}
        assert store.get("mcshard", payload) is None
        store.put("mcshard", payload, {"fails": [1, 2]})
        assert store.get("mcshard", payload) == {"fails": [1, 2]}

    def test_shares_entries_with_result_cache(self, tmp_path):
        """Store and ResultCache address the same bytes — the property
        that lets distributed runs resume single-host caches."""
        from repro.runtime import ResultCache

        path = str(tmp_path / "shared")
        ResultCache(cache_dir=path).put("mcshard", {"k": 1}, [1.5, 2.5])
        assert DirectoryStore(path).get("mcshard", {"k": 1}) == [1.5, 2.5]

    def test_describe_names_the_directory(self, tmp_path):
        store = DirectoryStore(str(tmp_path / "s"))
        assert store.describe() == f"directory:{tmp_path / 's'}"

    def test_put_failure_degrades_not_raises(self, tmp_path, monkeypatch):
        store = DirectoryStore(str(tmp_path / "s"))

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(store.cache, "put", boom)
        store.put("mcshard", {"k": 1}, 42)  # must not raise
        assert store.get("mcshard", {"k": 1}) is None

    def test_interface_is_abstract(self):
        with pytest.raises(TypeError):
            CacheStore()  # type: ignore[abstract]
