"""Tests of the shared cache-store abstraction."""

import pytest

from repro.distributed import CacheStore, DirectoryStore


class TestDirectoryStore:
    def test_round_trip(self, tmp_path):
        store = DirectoryStore(str(tmp_path / "s"))
        payload = {"cell": "6t", "vdd": 0.7, "seed": 3}
        assert store.get("mcshard", payload) is None
        store.put("mcshard", payload, {"fails": [1, 2]})
        assert store.get("mcshard", payload) == {"fails": [1, 2]}

    def test_shares_entries_with_result_cache(self, tmp_path):
        """Store and ResultCache address the same bytes — the property
        that lets distributed runs resume single-host caches."""
        from repro.runtime import ResultCache

        path = str(tmp_path / "shared")
        ResultCache(cache_dir=path).put("mcshard", {"k": 1}, [1.5, 2.5])
        assert DirectoryStore(path).get("mcshard", {"k": 1}) == [1.5, 2.5]

    def test_describe_names_the_directory(self, tmp_path):
        store = DirectoryStore(str(tmp_path / "s"))
        assert store.describe() == f"directory:{tmp_path / 's'}"

    def test_put_failure_degrades_not_raises(self, tmp_path, monkeypatch):
        store = DirectoryStore(str(tmp_path / "s"))

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(store.cache, "put", boom)
        store.put("mcshard", {"k": 1}, 42)  # must not raise
        assert store.get("mcshard", {"k": 1}) is None

    def test_interface_is_abstract(self):
        with pytest.raises(TypeError):
            CacheStore()  # type: ignore[abstract]

    def test_torn_document_reads_as_none(self, tmp_path):
        """The CacheStore contract: corruption is a miss, never an error.

        A torn write (killed process, full disk on a non-atomic backend)
        leaves a truncated JSON document; ``get`` must return ``None``
        so the caller recomputes — the fresh put then repairs the entry.
        """
        store = DirectoryStore(str(tmp_path / "s"))
        payload = {"cell": "6t", "vdd": 0.7}
        store.put("mcshard", payload, {"fails": [1, 2, 3]})
        path = store.cache.path("mcshard", payload)
        with open(path) as fh:
            intact = fh.read()
        for torn in (intact[: len(intact) // 2],  # truncated mid-document
                     "",                           # zero bytes
                     "{\"value\": "):              # cut inside the value
            with open(path, "w") as fh:
                fh.write(torn)
            assert store.get("mcshard", payload) is None, repr(torn[:20])
        # A well-formed document that is not a cache document either.
        with open(path, "w") as fh:
            fh.write("[1, 2, 3]")
        assert store.get("mcshard", payload) is None
        # The recompute path heals the slot.
        store.put("mcshard", payload, {"fails": [1, 2, 3]})
        assert store.get("mcshard", payload) == {"fails": [1, 2, 3]}

    def test_tier_counters(self, tmp_path):
        store = DirectoryStore(str(tmp_path / "s"))
        payload = {"k": 1}
        assert store.get("mcshard", payload) is None
        store.put("mcshard", payload, [1, 2])
        assert store.get("mcshard", payload) == [1, 2]
        stats = store.stats_payload()
        assert stats["store"].startswith("directory:")
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["bytes_written"] == stats["bytes_read"] > 0
        assert stats["errors"] == 0

    def test_put_failure_counts_an_error(self, tmp_path, monkeypatch):
        store = DirectoryStore(str(tmp_path / "s"))

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(store.cache, "put", boom)
        store.put("mcshard", {"k": 1}, 42)
        assert store.tier.errors == 1

    def test_ttl_expires_and_counts(self, tmp_path):
        import os
        import time

        store = DirectoryStore(str(tmp_path / "s"), ttl=60.0)
        payload = {"k": 1}
        store.put("mcshard", payload, "fresh")
        assert store.get("mcshard", payload) == "fresh"
        path = store.cache.path("mcshard", payload)
        old = time.time() - 61.0
        os.utime(path, (old, old))
        assert store.get("mcshard", payload) is None
        assert store.tier.expirations == 1
        assert os.path.exists(path)  # left for compact to reap

    def test_ttl_validation(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            DirectoryStore(str(tmp_path / "s"), ttl=-1.0)

    def test_ttl_zero_means_already_expired(self, tmp_path):
        """``ttl=0`` is legal and means every entry has lived its full
        TTL — reads miss (and count an expiration), writes still land."""
        store = DirectoryStore(str(tmp_path / "s"), ttl=0.0)
        store.put("mcshard", {"k": 1}, "v")
        assert store.get("mcshard", {"k": 1}) is None
        assert store.tier.expirations == 1

    def test_backward_clock_step_clamps_age_to_zero(
        self, tmp_path, monkeypatch
    ):
        """Satellite of the TTL-clock sweep: file tiers age by
        wall-clock mtime, so a backward clock step yields a *future*
        mtime; the age clamp makes that read as age 0 (fresh for any
        positive ttl, expired for ttl=0) rather than a negative age."""
        import os as _os
        import time as _time

        store = DirectoryStore(str(tmp_path / "s"), ttl=60.0)
        store.put("mcshard", {"k": 1}, "v")
        mtime = _os.path.getmtime(store.cache.path("mcshard", {"k": 1}))
        monkeypatch.setattr(_time, "time", lambda: mtime - 500.0)
        assert store.get("mcshard", {"k": 1}) == "v"
        assert store.tier.expirations == 0
