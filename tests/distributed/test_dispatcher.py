"""End-to-end tests of the shard dispatcher over localhost TCP.

The acceptance bar: a sweep dispatched to ≥2 workers produces
byte-identical merges to the monolithic ``analyze`` path, survives a
worker dying mid-shard, and never recomputes a shard that any worker
already wrote to the shared store.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.distributed import DispatchError
from repro.runtime import ResultCache
from repro.serving.server import request_stats
from repro.sram.montecarlo import MarginTally

from tests.distributed.conftest import (
    HEARTBEAT_INTERVAL,
    FakeWorker,
    WorkerThread,
    canon,
    make_dispatcher,
)

VDD = 0.7


class TestBitIdentity:
    def test_two_workers_match_monolithic_analyze(self, dist_analyzer, store_dir):
        reference = canon(dist_analyzer.analyze(VDD))
        with make_dispatcher(store_dir) as dispatcher:
            host, port = dispatcher.start()
            workers = [
                WorkerThread(host, port, store_dir, name=f"w{i}")
                for i in range(2)
            ]
            dispatcher.await_workers(2, timeout=10)
            rates = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=dispatcher
            )
            assert canon(rates) == reference
            stats = dispatcher.stats
            assert stats.jobs == 3 and stats.completed == 3
            assert stats.computed == 3 and stats.retries == 0
            # Both workers genuinely participated (3 jobs, capacity 1
            # each, so no worker can have taken them all... unless one
            # raced every ready; assert distribution, not exact split).
            assert set(stats.per_worker) == {"w0", "w1"}
        for worker in workers:
            worker.join()

    def test_distributed_matches_local_sharded_and_shares_cache(
        self, dist_analyzer, store_dir
    ):
        """A local --shards run and a distributed run address the same
        store entries: whichever runs second computes nothing."""
        local = dist_analyzer.analyze_sharded(
            VDD, shards=3, cache=ResultCache(cache_dir=store_dir)
        )
        with make_dispatcher(store_dir) as dispatcher:
            host, port = dispatcher.start()
            worker = WorkerThread(host, port, store_dir)
            dispatcher.await_workers(1, timeout=10)
            rates = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=dispatcher
            )
            assert canon(rates) == canon(local)
            # Every shard was answered from the dispatcher's store.
            assert dispatcher.stats.store_hits == 3
            assert dispatcher.stats.computed == 0
            assert dispatcher.stats.assignments == 0
        worker.join()


class TestFailureRecovery:
    def test_worker_dead_mid_shard_is_reassigned(self, dist_analyzer, store_dir):
        """The killed-mid-run acceptance scenario: the first worker takes
        a shard and goes silent; the dispatcher times it out, reassigns,
        and the merged result is still bit-identical."""
        reference = canon(dist_analyzer.analyze(VDD))
        with make_dispatcher(store_dir) as dispatcher:
            host, port = dispatcher.start()
            fake = FakeWorker(host, port, "silent", name="victim")
            dispatcher.await_workers(1, timeout=10)
            # The victim registered first, so it is first in the idle
            # queue and deterministically receives the first shard.
            survivor = WorkerThread(host, port, store_dir, name="survivor")
            dispatcher.await_workers(2, timeout=10)
            rates = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=dispatcher
            )
            assert canon(rates) == reference
            stats = dispatcher.stats
            assert stats.per_worker.get("victim") == 1
            assert stats.retries >= 1
            assert stats.workers_lost >= 1
            assert stats.completed == 3
        fake.join()
        survivor.join()

    def test_abrupt_disconnect_mid_shard_is_reassigned(
        self, dist_analyzer, store_dir
    ):
        reference = canon(dist_analyzer.analyze(VDD))
        with make_dispatcher(store_dir) as dispatcher:
            host, port = dispatcher.start()
            fake = FakeWorker(host, port, "disconnect", name="dropper")
            dispatcher.await_workers(1, timeout=10)
            survivor = WorkerThread(host, port, store_dir, name="survivor")
            dispatcher.await_workers(2, timeout=10)
            rates = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=dispatcher
            )
            assert canon(rates) == reference
            assert dispatcher.stats.retries >= 1
        fake.join()
        survivor.join()

    def test_error_with_unparseable_job_id_still_requeues(
        self, dist_analyzer, store_dir
    ):
        """A worker that cannot parse its assignment reports job_id '?';
        the dispatcher must requeue the job it held, not strand it."""
        reference = canon(dist_analyzer.analyze(VDD))
        with make_dispatcher(store_dir) as dispatcher:
            host, port = dispatcher.start()
            fake = FakeWorker(host, port, "error-mismatch", name="garbled")
            dispatcher.await_workers(1, timeout=10)
            survivor = WorkerThread(host, port, store_dir, name="survivor")
            dispatcher.await_workers(2, timeout=10)
            rates = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=dispatcher
            )
            assert canon(rates) == reference
            assert dispatcher.stats.retries >= 1
        survivor.join()

    def test_retries_exhausted_fails_the_run(self, dist_analyzer, store_dir):
        with make_dispatcher(store_dir, max_retries=1) as dispatcher:
            host, port = dispatcher.start()
            fake = FakeWorker(host, port, "error", name="lemon")
            dispatcher.await_workers(1, timeout=10)
            with pytest.raises(DispatchError, match="failed after"):
                dist_analyzer.analyze_sharded(
                    VDD, shards=2, dispatcher=dispatcher
                )
            assert dispatcher.stats.failures >= 1
        fake.join()


class TestSharedStoreDedupe:
    def test_workers_sharing_a_store_never_recompute(
        self, dist_analyzer, store_dir
    ):
        """Two fleets sharing one cache directory: the second fleet's
        workers answer everything from the store (dispatcher has no
        store of its own here, so the dedupe is purely worker-side)."""
        with make_dispatcher(store_dir=None) as first:
            host, port = first.start()
            worker = WorkerThread(host, port, store_dir, name="first")
            first.await_workers(1, timeout=10)
            rates_first = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=first
            )
            assert first.stats.computed == 3
        worker.join()

        with make_dispatcher(store_dir=None) as second:
            host, port = second.start()
            workers = [
                WorkerThread(host, port, store_dir, name=f"second-{i}")
                for i in range(2)
            ]
            second.await_workers(2, timeout=10)
            rates_second = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=second
            )
            assert canon(rates_second) == canon(rates_first)
            assert second.stats.worker_cache_hits == 3
            assert second.stats.computed == 0
        for worker in workers:
            worker.join()


class TestDispatcherProtocol:
    def test_stats_probe_over_tcp(self, dist_analyzer, store_dir):
        with make_dispatcher(store_dir) as dispatcher:
            host, port = dispatcher.start()
            worker = WorkerThread(host, port, store_dir)
            dispatcher.await_workers(1, timeout=10)
            dist_analyzer.analyze_sharded(VDD, shards=2, dispatcher=dispatcher)
            stats = request_stats(host, port)
            assert stats["jobs"] == 2
            assert stats["completed"] == 2
            assert stats["active_workers"] == 1
        worker.join()

    def test_start_on_taken_port_fails_loudly(self):
        """A bind failure must surface as DispatchError, not hang
        start() on an event that is never set."""
        with make_dispatcher() as first:
            host, port = first.start()
            second = make_dispatcher()
            with pytest.raises(DispatchError, match="could not listen"):
                second.start(host, port)

    def test_wait_for_workers_times_out(self):
        with make_dispatcher() as dispatcher:
            dispatcher.start()
            with pytest.raises(DispatchError, match="timed out"):
                dispatcher.await_workers(1, timeout=0.2)

    def test_run_guards(self, dist_analyzer):
        from repro.distributed import margin_tally_jobs

        with make_dispatcher() as dispatcher:
            with pytest.raises(DispatchError, match="not started"):
                dispatcher.dispatch([])
            dispatcher.start()
            with pytest.raises(DispatchError, match="empty job list"):
                dispatcher.dispatch([])
            resolved = dist_analyzer.resolved()
            plan = resolved.shard_plan(shards=2)
            jobs = margin_tally_jobs(resolved, VDD, plan)
            twice = list(jobs) + list(jobs)
            with pytest.raises(DispatchError, match="unique"):
                dispatcher.dispatch(twice)

    def test_raw_results_without_merge(self, dist_analyzer, store_dir):
        """run() without a merge returns per-job values in job order."""
        from repro.distributed import margin_tally_jobs

        resolved = dist_analyzer.resolved()
        plan = resolved.shard_plan(shards=3)
        jobs = margin_tally_jobs(resolved, VDD, plan)
        with make_dispatcher(store_dir) as dispatcher:
            host, port = dispatcher.start()
            worker = WorkerThread(host, port, store_dir)
            dispatcher.await_workers(1, timeout=10)
            values = dispatcher.dispatch(jobs, decode=MarginTally.from_dict)
            assert [v.block_index[0] for v in values] == [0, 2, 4]
            merged = MarginTally.merge(values)
            assert merged.n_samples == dist_analyzer.n_samples
        worker.join()


def margin_jobs(analyzer, shards=3):
    from repro.distributed import margin_tally_jobs

    resolved = analyzer.resolved()
    return margin_tally_jobs(resolved, VDD, resolved.shard_plan(shards=shards))


class TestScheduling:
    """Per-client priority queues, fair dequeue and queue observability."""

    @staticmethod
    def _await_depth(dispatcher, depth, timeout=10.0):
        import time

        deadline = time.monotonic() + timeout
        while dispatcher.queue_snapshot()["depth"] < depth:
            assert time.monotonic() < deadline, "jobs never queued"
            time.sleep(0.01)

    def test_priority_orders_assignments_within_a_client(
        self, dist_analyzer, store_dir
    ):
        """Jobs queued before any worker exists drain strictly by
        (priority, submit order) once a lone worker appears."""
        import threading

        jobs = margin_jobs(dist_analyzer, shards=4)
        order = []
        lock = threading.Lock()
        with make_dispatcher(store_dir, speculate=False) as dispatcher:
            host, port = dispatcher.start()

            def submit(job, priority):
                dispatcher.dispatch([job], priority=priority, timeout=60)
                with lock:
                    order.append(job.job_id)

            threads = [
                threading.Thread(target=submit, args=(job, priority))
                for job, priority in zip(jobs, [5, 0, 5, 0])
            ]
            for thread in threads:
                thread.start()
            # All four runs queued (no worker yet): observable depths.
            self._await_depth(dispatcher, 4)
            snapshot = dispatcher.queue_snapshot()
            assert snapshot["depth"] == 4
            assert snapshot["per_kind"] == {"margin_tally": 4}
            assert snapshot["per_client"] == {"default": 4}
            worker = WorkerThread(host, port, store_dir, name="solo")
            for thread in threads:
                thread.join(60)
            assert dispatcher.stats.per_worker == {"solo": 4}
            assert dispatcher.queue_snapshot()["depth"] == 0
            # The two priority-0 jobs completed before the priority-5s.
            assert set(order[:2]) == {jobs[1].job_id, jobs[3].job_id}
        worker.join()

    def test_concurrent_clients_share_the_fleet(self, dist_analyzer, store_dir):
        """Two client threads dispatching concurrently both finish, and
        their runs are tracked under their own client names."""
        import threading

        jobs_a = margin_jobs(dist_analyzer, shards=3)
        jobs_b = margin_jobs(dist_analyzer, shards=2)
        with make_dispatcher(store_dir) as dispatcher:
            host, port = dispatcher.start()
            workers = [
                WorkerThread(host, port, store_dir, name=f"w{i}")
                for i in range(2)
            ]
            dispatcher.await_workers(2, timeout=10)
            out = {}

            def run(name, jobs):
                out[name] = dispatcher.dispatch(
                    jobs, decode=MarginTally.from_dict,
                    merge=MarginTally.merge, client=name, timeout=60,
                )

            threads = [
                threading.Thread(target=run, args=("alice", jobs_a)),
                threading.Thread(target=run, args=("bob", jobs_b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert out["alice"].n_samples == dist_analyzer.n_samples
            assert out["bob"].n_samples == dist_analyzer.n_samples
            assert dispatcher.stats.completed == 5
        for worker in workers:
            worker.join()

    def test_same_job_ids_in_concurrent_runs_rejected(
        self, dist_analyzer, store_dir
    ):
        """A job id may not be outstanding in two runs at once (results
        could not be told apart); sequential reuse is fine."""
        import threading

        jobs = margin_jobs(dist_analyzer, shards=2)
        with make_dispatcher(store_dir=None) as dispatcher:
            host, port = dispatcher.start()
            errors = []

            def first():
                try:
                    dispatcher.dispatch(jobs, timeout=60)
                except DispatchError as exc:
                    errors.append(exc)

            thread = threading.Thread(target=first)
            thread.start()
            self._await_depth(dispatcher, 2)
            with pytest.raises(DispatchError, match="already outstanding"):
                dispatcher.dispatch(jobs, timeout=60)
            worker = WorkerThread(host, port, store_dir=None)
            thread.join(60)
            assert not errors
            # The ids are free again: a sequential rerun is legal.
            dispatcher.dispatch(jobs, timeout=60)
        worker.join()

    def test_stats_probe_reports_queues_and_speculation(
        self, dist_analyzer, store_dir
    ):
        from repro.serving.server import format_stats

        with make_dispatcher(store_dir, speculation_threshold=9.0) as dispatcher:
            host, port = dispatcher.start()
            worker = WorkerThread(host, port, store_dir)
            dispatcher.await_workers(1, timeout=10)
            dist_analyzer.analyze_sharded(VDD, shards=2, dispatcher=dispatcher)
            stats = request_stats(host, port)
            assert stats["queues"]["depth"] == 0
            assert stats["queues"]["inflight"] == 0
            assert stats["queues"]["per_kind"] == {}
            assert stats["speculation"] == {"enabled": True, "cutoff": 9.0}
            # The nested blocks render deterministically (sorted keys).
            text = format_stats(stats)
            assert text == format_stats(dict(reversed(list(stats.items()))))
            assert "queues:" in text and "speculation:" in text
        worker.join()

    def test_speculation_knobs_validated(self):
        from repro.distributed import ShardDispatcher

        for kwargs in [
            dict(speculation_threshold=0.0),
            dict(speculation_quantile=1.0),
            dict(speculation_factor=0.5),
            dict(speculation_min_samples=0),
        ]:
            with pytest.raises(DispatchError):
                ShardDispatcher(**kwargs)


class _ScriptedPeer:
    """Scaffolding for one-shot scripted workers: register, take one
    assignment, then hand control to :meth:`_after_assign`."""

    def __init__(self, host, port, name):
        self.host, self.port, self.name = host, port, name
        self.assigned = []
        self.acked = False
        self._done = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        try:
            asyncio.run(self._script())
        finally:
            self._done.set()

    async def _script(self):
        reader, writer = await asyncio.open_connection(self.host, self.port)

        async def send(payload):
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()

        async def recv():
            raw = await reader.readline()
            return json.loads(raw) if raw else None

        try:
            await send({"type": "register", "name": self.name,
                        "pid": 0, "protocol": 1})
            welcome = await recv()
            assert welcome and welcome["type"] == "welcome", welcome
            await send({"type": "ready"})
            message = await recv()
            assert message and message["type"] == "assign", message
            self.assigned.append(message["job"]["job_id"])
            await self._after_assign(send, recv)
        finally:
            writer.close()

    async def _after_assign(self, send, recv):
        raise NotImplementedError

    def join(self, timeout=10):
        assert self._done.wait(timeout), f"{self.name} script did not finish"


class DrainAnnouncingWorker(_ScriptedPeer):
    """Announces a clean ``shutdown`` with its assignment still in
    flight — the worker-side race of a ``--max-jobs`` drain."""

    async def _after_assign(self, send, recv):
        await send({"type": "shutdown"})
        while True:
            ack = await asyncio.wait_for(recv(), timeout=10)
            if ack is None:
                return
            if ack.get("type") == "shutdown":
                self.acked = True
                return


class HeartbeatingStraggler(_ScriptedPeer):
    """Holds its assignment forever while heartbeating — alive and
    slow, the shape that triggers speculation rather than retirement."""

    async def _after_assign(self, send, recv):
        while True:
            try:
                message = await asyncio.wait_for(
                    recv(), timeout=HEARTBEAT_INTERVAL / 2
                )
            except asyncio.TimeoutError:
                await send({"type": "heartbeat"})
                continue
            if message is None or message.get("type") == "shutdown":
                return


class TestDrainRaces:
    """Drain announcements racing live assignments (the satellite
    sweep): neither interleaving may burn a retry or bend the bytes."""

    def test_shutdown_with_job_in_flight_requeues_without_retry(
        self, dist_analyzer, store_dir
    ):
        """A worker announces shutdown while an assignment is in
        flight.  ``max_retries=0`` makes the proof sharp: if the
        graceful requeue consumed the retry budget, the run would fail
        outright instead of completing byte-identically."""
        reference = canon(dist_analyzer.analyze(VDD))
        with make_dispatcher(store_dir, max_retries=0) as dispatcher:
            host, port = dispatcher.start()
            drainer = DrainAnnouncingWorker(host, port, name="drainer")
            dispatcher.await_workers(1, timeout=10)
            survivor = WorkerThread(host, port, store_dir, name="survivor")
            dispatcher.await_workers(2, timeout=10)
            rates = dist_analyzer.analyze_sharded(
                VDD, shards=3, dispatcher=dispatcher
            )
            assert canon(rates) == reference
            stats = dispatcher.stats
            assert stats.per_worker.get("drainer") == 1
            assert stats.drain_requeues == 1
            assert stats.retries == 0
            assert stats.completed == 3
        drainer.join()
        assert drainer.acked, "dispatcher never acknowledged the drain"
        survivor.join()

    def test_backup_hits_max_jobs_on_the_speculated_job(
        self, dist_analyzer, store_dir
    ):
        """The speculation backup reaches ``--max-jobs`` on the very
        job it was speculated onto: its answer must land (a win), its
        drain must retire it gracefully, and the straggler's silence
        must not touch the (zero) retry budget."""
        reference = canon(dist_analyzer.analyze(VDD))
        with make_dispatcher(
            store_dir, max_retries=0, speculation_threshold=0.3
        ) as dispatcher:
            host, port = dispatcher.start()
            straggler = HeartbeatingStraggler(host, port, name="straggler")
            dispatcher.await_workers(1, timeout=10)
            result = {}
            runner = threading.Thread(
                target=lambda: result.update(rates=dist_analyzer.analyze_sharded(
                    VDD, shards=1, dispatcher=dispatcher
                )),
                daemon=True,
            )
            runner.start()
            # The straggler is the only worker, so the one shard lands
            # on it deterministically; only then does the backup join.
            deadline = time.time() + 10
            while dispatcher.stats.assignments < 1:
                assert time.time() < deadline, "shard never assigned"
                time.sleep(0.01)
            backup = WorkerThread(
                host, port, store_dir, name="backup", max_jobs=1
            )
            runner.join(60)
            assert not runner.is_alive(), "dispatch did not complete"
            assert canon(result["rates"]) == reference
            stats = dispatcher.stats
            assert stats.speculations == 1
            assert stats.speculative_wins == 1
            assert stats.retries == 0
            assert stats.completed == 1
        assert backup.join() == 1  # drained cleanly after its one job
        straggler.join()
