"""Unit tests of the durable run journal (write-ahead log + replay).

Everything here is single-process: append records the way the
dispatcher would, then replay the file and assert what a recovering
dispatcher would see.  The end-to-end crash/restart story lives in
``test_recovery.py``; the edge cases — torn final lines, duplicate and
orphan completions, job kinds this build cannot rebuild — live here,
where each can be constructed byte-exactly.
"""

import json

import pytest

from repro.distributed import RunJournal, margin_tally_jobs
from repro.distributed.journal import JOURNAL_VERSION, job_address

VDD = 0.7


@pytest.fixture()
def jobs(dist_analyzer):
    resolved = dist_analyzer.resolved()
    return list(margin_tally_jobs(resolved, VDD, resolved.shard_plan(shards=3)))


@pytest.fixture()
def journal(tmp_path):
    with RunJournal(str(tmp_path / "journal")) as j:
        yield j


class TestRoundTrip:
    def test_jobs_and_done_partition(self, journal, jobs):
        journal.open_session()
        for job in jobs:
            journal.record_job(job, "alice", 5)
        journal.record_done(jobs[0])
        replay = journal.replay()
        assert replay.records == 5  # open + 3 jobs + 1 done
        assert [e.job.job_id for e in replay.done] == [jobs[0].job_id]
        assert [e.job.job_id for e in replay.pending] == [
            jobs[1].job_id, jobs[2].job_id,
        ]
        assert replay.torn == 0 and replay.orphan_done == 0
        assert replay.unknown == []
        # The journaled spec round-trips the full wire form, and the
        # scheduling identity rides along.
        entry = replay.done[0]
        assert entry.job.to_wire() == jobs[0].to_wire()
        assert entry.client == "alice" and entry.priority == 5

    def test_open_record_carries_schema_version(self, journal):
        journal.open_session()
        (line,) = journal.path.read_text().splitlines()
        record = json.loads(line)
        assert record["rec"] == "open"
        assert record["version"] == JOURNAL_VERSION

    def test_replay_of_absent_file_is_empty(self, tmp_path):
        replay = RunJournal(str(tmp_path / "fresh")).replay()
        assert replay.pending == [] and replay.done == []
        assert replay.records == 0

    def test_journal_errors_fail_open(self, journal, jobs):
        """A dead handle (stand-in for a full disk) must not raise out
        of the append path — durability degrades, the run survives."""
        journal.open_session()
        journal._handle.close()
        journal.record_done(jobs[0])
        assert journal.errors == 1

    def test_fsync_journal_appends_identically(self, tmp_path, jobs):
        with RunJournal(str(tmp_path), fsync=True) as fsynced:
            fsynced.record_job(jobs[0], "alice", 0)
        replay = RunJournal(str(tmp_path)).replay()
        assert [e.job.job_id for e in replay.pending] == [jobs[0].job_id]


class TestReplayTolerance:
    def test_torn_final_line_is_skipped(self, journal, jobs):
        """The mid-write crash shape: the final line stops mid-token.
        Replay must count it and keep every record before it."""
        for job in jobs:
            journal.record_job(job, "alice", 0)
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"rec": "done", "job_id": "mt-')
        replay = journal.replay()
        assert replay.torn == 1
        assert len(replay.pending) == 3 and replay.done == []

    def test_non_object_line_counts_as_torn(self, journal):
        journal.close()
        journal.path.write_text('[1, 2, 3]\n"just a string"\n')
        replay = journal.replay()
        assert replay.torn == 2 and replay.records == 2

    def test_duplicate_done_is_idempotent(self, journal, jobs):
        """Overlapping sessions can journal one completion twice (the
        store-hit fast path of a resubmitted job); the job must still
        land in ``done`` exactly once."""
        journal.record_job(jobs[0], "alice", 0)
        journal.record_done(jobs[0])
        journal.record_done(jobs[0])
        replay = journal.replay()
        assert len(replay.done) == 1
        assert replay.orphan_done == 0

    def test_orphan_done_is_counted_not_replayed(self, journal, jobs):
        journal.record_done(jobs[0])  # no matching job record
        replay = journal.replay()
        assert replay.orphan_done == 1
        assert replay.pending == [] and replay.done == []

    def test_duplicate_job_record_first_wins(self, journal, jobs):
        journal.record_job(jobs[0], "alice", 0)
        journal.record_job(jobs[0], "bob", 9)
        replay = journal.replay()
        (entry,) = replay.pending
        assert entry.client == "alice" and entry.priority == 0

    def test_unknown_job_kind_lands_in_unknown(self, journal, jobs):
        """A journal written by a newer/foreign build can hold kinds
        this build cannot rebuild — skipped with identity, not fatal."""
        alien = dict(jobs[0].to_wire(), kind="alien_kind", job_id="alien-0")
        journal._append({"rec": "job", "job": alien, "client": "x",
                         "priority": 0})
        journal.record_job(jobs[1], "alice", 0)
        replay = journal.replay()
        assert [e.job.job_id for e in replay.pending] == [jobs[1].job_id]
        (unknown,) = replay.unknown
        assert unknown["job_id"] == "alien-0"
        assert "alien_kind" in unknown["error"]

    def test_future_record_kinds_are_ignored(self, journal, jobs):
        journal._append({"rec": "checkpoint", "epoch": 7})
        journal.record_job(jobs[0], "alice", 0)
        replay = journal.replay()
        assert replay.records == 2
        assert len(replay.pending) == 1 and replay.torn == 0

    def test_malformed_scheduling_identity_falls_back(self, journal, jobs):
        """A job record with a mangled client/priority still replays —
        under the defaults, not as a torn line."""
        journal._append({
            "rec": "job", "job": jobs[0].to_wire(),
            "client": 42, "priority": "high",
        })
        (entry,) = journal.replay().pending
        assert entry.client == "journal" and entry.priority == 0


class TestJobAddress:
    def test_same_content_different_ids_share_an_address(self, dist_analyzer):
        """Job ids are per-invocation tags; the content address is what
        survives a restart — the whole adoption mechanism rests here."""
        resolved = dist_analyzer.resolved()
        plan = resolved.shard_plan(shards=3)
        first = margin_tally_jobs(resolved, VDD, plan)
        second = margin_tally_jobs(resolved, VDD, plan)
        for a, b in zip(first, second):
            assert a.job_id != b.job_id
            assert job_address(a) == job_address(b)
        assert len({job_address(j) for j in first}) == len(first)
