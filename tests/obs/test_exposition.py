"""HTTP exposition: /metrics over a real localhost socket."""

import urllib.error
import urllib.request

import pytest

from repro.obs import bind_store_metrics
from repro.obs.exposition import CONTENT_TYPE, MetricsServer
from repro.obs.metrics import MetricsRegistry


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, dict(response.headers), response.read().decode()


class TestMetricsServer:
    def test_serves_prometheus_text_on_an_ephemeral_port(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(3)
        with MetricsServer(registry, port=0) as server:
            assert server.url.endswith("/metrics")
            status, headers, body = _get(server.url)
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert "repro_test_total 3" in body

    def test_root_path_also_renders_and_query_strings_are_ignored(self):
        registry = MetricsRegistry()
        registry.gauge("up").set(1)
        with MetricsServer(registry) as server:
            base = f"http://{server.host}:{server.port}"
            assert "up 1" in _get(base + "/")[2]
            assert "up 1" in _get(base + "/metrics?x=1")[2]

    def test_unknown_paths_are_404(self):
        with MetricsServer(MetricsRegistry()) as server:
            base = f"http://{server.host}:{server.port}"
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base + "/healthz")
            assert err.value.code == 404

    def test_scrape_runs_collectors(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda r: r.gauge("live_depth").set(9))
        with MetricsServer(registry) as server:
            assert "live_depth 9" in _get(server.url)[2]

    def test_port_before_start_raises(self):
        server = MetricsServer(MetricsRegistry())
        with pytest.raises(RuntimeError, match="not started"):
            server.port

    def test_double_start_raises_and_stop_is_idempotent(self):
        server = MetricsServer(MetricsRegistry()).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.stop()
        server.stop()  # no-op after shutdown
        server.start()  # restartable once stopped
        server.stop()


class TestBindStoreMetrics:
    def test_tiered_store_binds_per_tier_and_write_behind_series(
        self, tmp_path
    ):
        from repro.distributed.store import DirectoryStore
        from repro.runtime.tiering import TieredStore

        store = TieredStore(local=DirectoryStore(str(tmp_path)))
        store.put("ns", {"k": 1}, {"v": 2})
        assert store.get("ns", {"k": 1}) == {"v": 2}
        registry = MetricsRegistry()
        bind_store_metrics(registry, store, component="serve")
        assert registry.counter(
            "repro_cache_hits_total", {"component": "serve", "tier": "local"}
        ).value == 1
        names = {row["name"] for row in registry.snapshot()["series"]}
        assert "repro_cache_write_behind_dropped_total" in names
        store.close()

    def test_plain_store_binds_one_local_tier(self, tmp_path):
        from repro.distributed.store import DirectoryStore

        store = DirectoryStore(str(tmp_path))
        store.put("ns", {"k": 1}, {"v": 2})
        registry = MetricsRegistry()
        bind_store_metrics(registry, store, component="worker")
        assert registry.counter(
            "repro_cache_puts_total", {"component": "worker", "tier": "local"}
        ).value == 1

    def test_storeless_objects_are_a_no_op(self):
        registry = MetricsRegistry()
        bind_store_metrics(registry, object(), component="dispatch")
        assert registry.snapshot()["series"] == []
