"""Unit coverage of spans, wire contexts and the trace exporters.

Cross-process propagation and byte-identity under chaos live in
``tests/distributed/test_tracing_chaos.py``; this module pins the local
contracts: deterministic ids, parenting, the disabled-tracer no-op
path, and both export formats.
"""

import json

import pytest

from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TraceContext,
    Tracer,
    chrome_trace_document,
    get_tracer,
    maybe_enable_tracing_from_env,
    set_tracer,
)


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext(trace_id="t1", span_id="s1")
        assert ctx.to_wire() == {"trace_id": "t1", "span_id": "s1"}
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize("wire", [
        None, "nope", 7, [], {}, {"trace_id": "t1"},
        {"trace_id": "t1", "span_id": 3},
    ])
    def test_malformed_wire_is_none(self, wire):
        # Peers ignore unknown/garbled fields rather than crashing.
        assert TraceContext.from_wire(wire) is None


class TestDisabledTracer:
    def test_start_span_returns_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.start_span("anything")
        assert span is NULL_SPAN
        assert span.context() is None

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set_attr("k", "v")
            span.add_event("e", detail=1)
            span.end(status="error")
        assert NULL_SPAN.ended
        assert NULL_SPAN.status == "ok"

    def test_process_default_tracer_is_disabled(self):
        assert get_tracer().enabled is False


class TestSpans:
    def test_deterministic_ids(self):
        tracer = Tracer(enabled=True, deterministic=True)
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root)
        assert (root.trace_id, root.span_id) == ("t0001", "s0001")
        assert child.trace_id == "t0001"
        assert child.span_id == "s0002"
        assert child.parent_id == "s0001"

    def test_parenting_by_wire_context(self):
        tracer = Tracer(enabled=True, deterministic=True)
        remote = TraceContext.from_wire({"trace_id": "tX", "span_id": "sX"})
        span = tracer.start_span("worker.execute", parent=remote)
        assert span.trace_id == "tX"
        assert span.parent_id == "sX"

    def test_null_span_parent_starts_a_fresh_trace(self):
        tracer = Tracer(enabled=True, deterministic=True)
        span = tracer.start_span("root", parent=NULL_SPAN)
        assert span.parent_id is None
        assert span.trace_id == "t0001"

    def test_end_is_idempotent_and_keeps_first_status(self):
        tracer = Tracer(enabled=True)
        span = tracer.start_span("op")
        span.end(status="failed")
        duration = span.duration
        span.end(status="ok")
        assert span.status == "failed"
        assert span.duration == duration
        assert len(tracer.finished()) == 1

    def test_context_manager_marks_errors(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.start_span("op"):
                raise RuntimeError("boom")
        (span,) = tracer.finished()
        assert span.status == "error"

    def test_attrs_and_events_in_to_dict(self):
        tracer = Tracer(enabled=True, deterministic=True)
        span = tracer.start_span("op", attrs={"job_id": "j1"})
        span.set_attr("worker", "w0")
        span.add_event("retry", attempt=2)
        span.end()
        doc = span.to_dict()
        assert doc["name"] == "op"
        assert doc["attrs"] == {"job_id": "j1", "worker": "w0"}
        (event,) = doc["events"]
        assert event["name"] == "retry"
        assert event["attempt"] == 2
        assert doc["status"] == "ok"

    def test_max_spans_caps_retention(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for i in range(5):
            tracer.start_span(f"op{i}").end()
        assert [s.name for s in tracer.finished()] == ["op0", "op1"]

    def test_clear_drops_finished_spans(self):
        tracer = Tracer(enabled=True)
        tracer.start_span("op").end()
        tracer.clear()
        assert tracer.finished() == []


class TestExport:
    def _tracer_with_two_traces(self):
        tracer = Tracer(enabled=True, deterministic=True)
        root = tracer.start_span("dispatch.run")
        tracer.start_span("job:margin", parent=root).end()
        root.end()
        tracer.start_span("other").end()
        return tracer

    def test_export_jsonl(self, tmp_path):
        tracer = self._tracer_with_two_traces()
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(path)) == 3
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [doc["name"] for doc in lines] == [
            "job:margin", "dispatch.run", "other",
        ]

    def test_chrome_trace_document_shape(self):
        tracer = self._tracer_with_two_traces()
        doc = tracer.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "span_id" in event["args"]
        # Spans of one trace share a tid (one Perfetto track per trace).
        tids = {e["args"]["trace_id"]: e["tid"] for e in events}
        assert len(set(tids.values())) == 2

    def test_chrome_trace_document_empty(self):
        assert chrome_trace_document([]) == {
            "traceEvents": [], "displayTimeUnit": "ms",
        }

    def test_write_chrome_trace(self, tmp_path):
        tracer = self._tracer_with_two_traces()
        path = tmp_path / "trace.json"
        assert tracer.write_chrome_trace(str(path)) == 3
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 3

    def test_span_requires_a_tracer_to_finish_into(self):
        tracer = Tracer(enabled=True)
        span = Span(tracer, "op", "t1", "s1", None)
        span.end()
        assert tracer.finished() == [span]


class TestEnvEnable:
    def test_unset_env_keeps_tracing_off(self):
        assert maybe_enable_tracing_from_env({}) is None

    def test_repro_trace_enables_the_default_tracer(self):
        before = get_tracer()
        try:
            tracer = maybe_enable_tracing_from_env({"REPRO_TRACE": "1"})
            assert tracer is not None and tracer.enabled
            assert not tracer.deterministic
            assert get_tracer() is tracer
            pinned = maybe_enable_tracing_from_env(
                {"REPRO_TRACE": "1", "REPRO_TRACE_DETERMINISTIC": "1"}
            )
            assert pinned is not None and pinned.deterministic
        finally:
            set_tracer(before)
