"""Unit coverage of the flight recorder ring buffer."""

import json
import pickle
import threading

import pytest

from repro.obs.flight import (
    FlightRecorder,
    get_flight_recorder,
    set_flight_recorder,
)


class TestFlightRecorder:
    def test_events_carry_seq_ts_kind_and_fields(self):
        recorder = FlightRecorder(capacity=8)
        event = recorder.record("worker_join", worker="w0")
        assert event["seq"] == 1
        assert event["kind"] == "worker_join"
        assert event["worker"] == "w0"
        assert event["ts"] > 0

    def test_snapshot_is_oldest_first_and_detached(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("a")
        recorder.record("b")
        snap = recorder.snapshot()
        assert [e["kind"] for e in snap] == ["a", "b"]
        snap[0]["kind"] = "mutated"
        assert recorder.snapshot()[0]["kind"] == "a"

    def test_capacity_rotates_but_recorded_counts_everything(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record("e", i=i)
        assert len(recorder) == 3
        assert recorder.recorded == 5
        assert [e["i"] for e in recorder.snapshot()] == [2, 3, 4]
        # Sequence numbers keep climbing across rotation.
        assert [e["seq"] for e in recorder.snapshot()] == [3, 4, 5]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_dump_writes_a_json_document(self, tmp_path):
        recorder = FlightRecorder(capacity=2)
        for i in range(3):
            recorder.record("e", i=i)
        path = tmp_path / "flight.json"
        assert recorder.dump(str(path)) == 2
        doc = json.loads(path.read_text())
        assert doc["capacity"] == 2
        assert doc["recorded"] == 3
        assert [e["i"] for e in doc["events"]] == [1, 2]

    def test_pickle_round_trip(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("a")
        clone = pickle.loads(pickle.dumps(recorder))
        assert [e["kind"] for e in clone.snapshot()] == ["a"]
        clone.record("b")  # lock regrown, maxlen preserved
        assert len(clone) == 2
        for _ in range(5):
            clone.record("spill")
        assert len(clone) == 4

    def test_concurrent_records_never_collide_on_seq(self):
        recorder = FlightRecorder(capacity=10_000)

        def worker():
            for _ in range(500):
                recorder.record("e")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e["seq"] for e in recorder.snapshot()]
        assert len(seqs) == 2000
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 2000


class TestDefaultRecorder:
    def test_process_default_is_created_lazily_and_resettable(self):
        try:
            set_flight_recorder(None)
            first = get_flight_recorder()
            assert get_flight_recorder() is first
            mine = FlightRecorder(capacity=4)
            set_flight_recorder(mine)
            assert get_flight_recorder() is mine
        finally:
            set_flight_recorder(None)
