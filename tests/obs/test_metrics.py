"""Unit coverage of the metrics registry and the stats-facade plumbing.

The registry is the single source of truth behind every ``stats`` probe
and ``/metrics`` endpoint, so its contracts are pinned here directly:
thread-safe series creation, integer preservation on the JSON wire,
Prometheus text rendering, pickling across spawn boundaries, and the
:class:`MetricField` / :class:`LabeledCounterMap` descriptor machinery
that keeps fifty pre-existing ``stats.x += 1`` call sites working.
"""

import pickle
import threading

import pytest

from repro.obs.metrics import (
    STATS_VERSION,
    Counter,
    Gauge,
    Histogram,
    Instrumented,
    LabeledCounterMap,
    MetricField,
    MetricsRegistry,
    default_registry,
    metric_fields,
    set_default_registry,
)


class TestSeries:
    def test_counter_inc_and_set(self):
        c = Counter("x_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set(2)
        assert c.value == 2

    def test_counter_stays_int_until_float_observed(self):
        c = Counter("x_total")
        c.inc(3)
        assert isinstance(c.value, int)
        c.inc(0.5)
        assert isinstance(c.value, float)

    def test_gauge_is_counter_with_gauge_kind(self):
        g = Gauge("pool")
        assert g.kind == "gauge"
        g.set(7)
        g.inc(-2)
        assert g.value == 5

    def test_histogram_observe_and_cumulative(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        cumulative = dict(h.cumulative())
        assert cumulative["0.1"] == 1
        assert cumulative["1.0"] == 3
        assert cumulative["10.0"] == 4
        assert cumulative["+Inf"] == 5
        assert h.value["count"] == 5

    def test_histogram_boundary_lands_in_its_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" is inclusive, Prometheus-style
        assert dict(h.cumulative())["1.0"] == 1

    @pytest.mark.parametrize("buckets", [(), (1.0, 1.0), (2.0, 1.0)])
    def test_histogram_rejects_bad_buckets(self, buckets):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("lat", buckets=buckets)


class TestRegistry:
    def test_same_name_same_labels_is_same_series(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", {"x": "1"}) is not r.counter("a", {"x": "2"})
        # Label insertion order cannot mint a second series.
        assert r.counter("b", {"x": "1", "y": "2"}) is r.counter(
            "b", {"y": "2", "x": "1"}
        )

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError, match="already registered as counter"):
            r.gauge("a")

    def test_collectors_run_on_snapshot_and_broken_ones_are_survived(self):
        r = MetricsRegistry()

        def broken(_registry):
            raise RuntimeError("scrape race")

        def publish(registry):
            registry.gauge("depth").set(3)

        r.add_collector(broken)
        r.add_collector(publish)
        snap = r.snapshot()
        assert snap["stats_version"] == STATS_VERSION
        by_name = {row["name"]: row for row in snap["series"]}
        assert by_name["depth"]["value"] == 3

    def test_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("jobs_total", {"kind": "margin"}).inc(2)
        (row,) = r.snapshot()["series"]
        assert row == {
            "name": "jobs_total",
            "kind": "counter",
            "labels": {"kind": "margin"},
            "value": 2,
        }

    def test_render_prometheus_text_format(self):
        r = MetricsRegistry()
        r.counter("jobs_total").inc(3)
        r.gauge("workers", {"pool": "a"}).set(2)
        r.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        text = r.render_prometheus()
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text
        assert '# TYPE workers gauge' in text
        assert 'workers{pool="a"} 2' in text
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        r = MetricsRegistry()
        r.counter("c", {"path": 'a"b\\c\nd'}).inc()
        text = r.render_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_registry_pickles_without_collectors(self):
        r = MetricsRegistry()
        r.counter("jobs_total").inc(5)
        r.add_collector(lambda reg: reg.gauge("live").set(1))
        clone = pickle.loads(pickle.dumps(r))
        assert clone.counter("jobs_total").value == 5
        # Collector closures capture live objects; they must not travel.
        assert clone.snapshot()["series"][0]["name"] == "jobs_total"
        clone.counter("jobs_total").inc()  # lock regrown and usable
        assert clone.counter("jobs_total").value == 6

    def test_concurrent_increments_do_not_lose_updates(self):
        r = MetricsRegistry()
        c = r.counter("n")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000

    def test_default_registry_is_process_wide_and_resettable(self):
        try:
            set_default_registry(None)
            first = default_registry()
            assert default_registry() is first
            mine = MetricsRegistry()
            set_default_registry(mine)
            assert default_registry() is mine
        finally:
            set_default_registry(None)


class _Stats(Instrumented):
    done = MetricField("test_done_total")
    live = MetricField("test_live", kind="gauge")

    def __init__(self, registry=None):
        self._obs_init(registry)
        self.per_worker = LabeledCounterMap(self, "test_per_worker_total", "worker")


class TestFacade:
    def test_metric_field_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unsupported metric field kind"):
            MetricField("x", kind="histogram")

    def test_class_access_returns_descriptor(self):
        assert isinstance(_Stats.done, MetricField)
        assert [f.metric for f in metric_fields(_Stats)] == [
            "test_done_total", "test_live",
        ]

    def test_augmented_assignment_reaches_the_registry(self):
        r = MetricsRegistry()
        s = _Stats(r)
        s.done += 1
        s.done += 1
        s.live = 4
        assert s.done == 2
        assert r.counter("test_done_total").value == 2
        assert r.gauge("test_live").value == 4

    def test_fields_materialise_at_zero_on_init(self):
        r = MetricsRegistry()
        _Stats(r)
        names = {row["name"] for row in r.snapshot()["series"]}
        assert {"test_done_total", "test_live"} <= names

    def test_unpickled_facade_regrows_a_private_registry(self):
        s = _Stats()
        s.done += 3
        clone = pickle.loads(pickle.dumps(s))
        assert clone.done == 3
        clone.done += 1
        assert clone.done == 4
        assert clone.metrics is not s.metrics

    def test_bind_metrics_carries_values_and_label_families(self):
        s = _Stats()
        s.done += 7
        s.per_worker.inc("w0", 2)
        shared = MetricsRegistry()
        s.bind_metrics(shared, {"component": "dispatch"})
        assert s.done == 7
        assert s.per_worker.to_dict() == {"w0": 2}
        assert shared.counter(
            "test_done_total", {"component": "dispatch"}
        ).value == 7
        assert shared.counter(
            "test_per_worker_total", {"component": "dispatch", "worker": "w0"}
        ).value == 2
        s.done += 1  # post-bind writes land in the shared registry
        assert shared.counter(
            "test_done_total", {"component": "dispatch"}
        ).value == 8


class TestLabeledCounterMap:
    def test_dict_like_surface(self):
        s = _Stats()
        m = s.per_worker
        assert len(m) == 0
        assert m.get("w0") is None
        assert m.get("w0", 0) == 0
        with pytest.raises(KeyError):
            m["w0"]
        m["w0"] = 2
        m.inc("w0")
        m.inc("w1")
        assert m["w0"] == 3
        assert "w0" in m and "missing" not in m
        assert sorted(m) == ["w0", "w1"]
        assert m.keys() == ["w0", "w1"]
        assert m.items() == [("w0", 3), ("w1", 1)]
        assert m.to_dict() == {"w0": 3, "w1": 1}

    def test_equality_against_dicts_and_maps(self):
        a, b = _Stats(), _Stats()
        a.per_worker.inc("w0")
        b.per_worker.inc("w0")
        assert a.per_worker == {"w0": 1}
        assert a.per_worker == b.per_worker
        assert (a.per_worker == 3) is False
