"""The `repro-sram top` renderer and poll loop, probe-free.

``render_dashboard`` is a pure function of a stats-probe document, so
the suite feeds it canned dispatcher/serve probes; ``run_top`` gets a
stub ``fetch`` instead of a live socket.
"""

import io

from repro.obs.top import CLEAR, render_dashboard, run_top

DISPATCH_STATS = {
    "stats_version": 1,
    "jobs": 10,
    "completed": 7,
    "assignments": 12,
    "retries": 2,
    "failures": 0,
    "speculations": 1,
    "speculative_wins": 1,
    "drain_requeues": 0,
    "store_hits": 3,
    "worker_cache_hits": 1,
    "computed": 6,
    "active_workers": 2,
    "workers_seen": 3,
    "workers_lost": 1,
    "per_worker": {"w0": 8, "w1": 4},
    "queues": {
        "depth": 3,
        "inflight": 2,
        "per_kind": {"margin_tally": 2, "is_shard": 1},
        "per_client": {"default": 3},
    },
    "latency": {"samples": 7, "mean": 0.30000000000000004, "p50": 0.25,
                "max": 1.0},
    "speculation": {"cutoff": 0.75},
    "store": {
        "tiers": {
            "memory": {"hits": 8, "misses": 2, "puts": 10, "errors": 0},
            "remote": {"hits": 0, "misses": 0, "puts": 4, "errors": 1},
        },
        "write_behind": {"queued": 4, "flushed": 3, "dropped": 1},
    },
}

SERVE_STATS = {
    "stats_version": 1,
    "requests": 100,
    "cache_hits": 40,
    "coalesced": 10,
    "batches": 12,
    "evaluations": 60,
    "errors": 0,
    "store": {"store": "memory:lru", "hits": 40, "misses": 60, "errors": 0},
}


class TestRenderDashboard:
    def test_dispatcher_frame(self):
        frame = render_dashboard(DISPATCH_STATS)
        assert "dispatcher probe (stats v1)" in frame
        assert "done 7/10" in frame
        assert "assignments 12" in frame
        assert "depth 3" in frame and "inflight 2" in frame
        assert "margin_tally" in frame
        assert "clients: default=3" in frame
        # Floats render at 6 significant digits.
        assert "mean 0.3s" in frame
        assert "speculation cutoff 0.75s" in frame
        assert "w0" in frame and "w1" in frame
        assert "memory" in frame and "80.0%" in frame
        assert "write-behind:" in frame and "dropped=1" in frame
        assert frame.endswith("\n")

    def test_serve_frame(self):
        frame = render_dashboard(SERVE_STATS, title="t")
        assert "serve probe" in frame
        assert "requests  100" in frame
        assert "cache-hits 40 (40.0%)" in frame
        assert "coalesced 10" in frame
        assert "memory:lru: hit-rate 40.0%" in frame

    def test_empty_tiers_and_zero_requests_render_dashes(self):
        frame = render_dashboard({
            "requests": 0, "store": {"tiers": {"memory": {}}},
        })
        assert "(-)" in frame or "- " in frame  # no division by zero


class TestRunTop:
    def test_finite_iterations_render_frames(self):
        out = io.StringIO()
        calls = []

        def fetch(host, port):
            calls.append((host, port))
            return dict(DISPATCH_STATS)

        code = run_top("localhost", 9, interval=0.0, iterations=3,
                       clear=False, out=out, fetch=fetch,
                       sleep=lambda _s: None)
        assert code == 0
        assert calls == [("localhost", 9)] * 3
        assert out.getvalue().count("dispatcher probe") == 3
        assert CLEAR not in out.getvalue()

    def test_clear_mode_prefixes_each_frame(self):
        out = io.StringIO()
        run_top("h", 1, iterations=1, clear=True, out=out,
                fetch=lambda h, p: dict(SERVE_STATS), sleep=lambda _s: None)
        assert out.getvalue().startswith(CLEAR)

    def test_unreachable_probe_exits_nonzero(self):
        out = io.StringIO()

        def fetch(host, port):
            raise ConnectionRefusedError("down")

        code = run_top("h", 1, iterations=5, out=out, fetch=fetch)
        assert code == 1
        assert "unavailable" in out.getvalue()

    def test_default_fetch_is_the_serving_stats_probe(self):
        # No stub: the real request_stats import path runs, against a
        # port nothing listens on, and run_top reports the probe down.
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            dead_port = sock.getsockname()[1]
        out = io.StringIO()
        code = run_top("127.0.0.1", dead_port, iterations=1, out=out)
        assert code == 1
        assert "unavailable" in out.getvalue()

    def test_ctrl_c_exits_cleanly(self):
        out = io.StringIO()

        def sleep(_seconds):
            raise KeyboardInterrupt

        code = run_top("h", 1, iterations=0, clear=False, out=out,
                       fetch=lambda h, p: dict(SERVE_STATS), sleep=sleep)
        assert code == 0
