"""Tests of dense layers, the network container, and backprop gradients."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import CrossEntropyLoss, DenseLayer, FeedforwardANN, NetworkSpec


class TestDenseLayer:
    def test_forward_shape(self):
        layer = DenseLayer(5, 3, seed=0)
        out = layer.forward(np.zeros((7, 5)))
        assert out.shape == (7, 3)

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            DenseLayer(0, 3)

    def test_backward_requires_forward(self):
        layer = DenseLayer(4, 2, seed=0)
        with pytest.raises(ConfigurationError):
            layer.backward(np.zeros((1, 2)))

    def test_synapse_count_includes_biases(self):
        assert DenseLayer(10, 4).n_synapses == 44

    def test_clone_restore_roundtrip(self):
        layer = DenseLayer(6, 4, seed=1)
        snap = layer.clone_parameters()
        layer.weights += 1.0
        layer.restore_parameters(snap)
        np.testing.assert_array_equal(layer.weights, snap[0])

    def test_restore_shape_checked(self):
        layer = DenseLayer(6, 4, seed=1)
        with pytest.raises(ConfigurationError):
            layer.restore_parameters((np.zeros((2, 2)), np.zeros(2)))


class TestNetworkSpec:
    def test_paper_table1_arithmetic(self):
        """Table I: 6 layers, 2594 neurons, 1,406,810 synapses."""
        spec = NetworkSpec(layer_sizes=(784, 1000, 500, 200, 100, 10))
        assert spec.n_layers == 6
        assert spec.n_neurons == 2594
        assert spec.n_synapses == 1_406_810

    def test_rejects_single_layer(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec(layer_sizes=(784,))

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec(layer_sizes=(784, 0, 10))


class TestFeedforward:
    def test_forward_shape_and_1d_promotion(self):
        net = FeedforwardANN(NetworkSpec(layer_sizes=(8, 6, 3), seed=0))
        assert net.forward(np.zeros((5, 8))).shape == (5, 3)
        assert net.forward(np.zeros(8)).shape == (1, 3)

    def test_input_width_checked(self):
        net = FeedforwardANN(NetworkSpec(layer_sizes=(8, 6, 3), seed=0))
        with pytest.raises(ConfigurationError):
            net.forward(np.zeros((5, 9)))

    def test_deterministic_init(self):
        a = FeedforwardANN(NetworkSpec(layer_sizes=(8, 6, 3), seed=42))
        b = FeedforwardANN(NetworkSpec(layer_sizes=(8, 6, 3), seed=42))
        for la, lb in zip(a.layers, b.layers):
            np.testing.assert_array_equal(la.weights, lb.weights)

    def test_snapshot_restore(self):
        net = FeedforwardANN(NetworkSpec(layer_sizes=(8, 6, 3), seed=0))
        snap = net.snapshot()
        x = np.linspace(0, 1, 8)
        before = net.forward(x).copy()
        net.layers[0].weights += 0.5
        net.restore(snap)
        np.testing.assert_allclose(net.forward(x), before)

    def test_set_weight_matrices_shape_checked(self):
        net = FeedforwardANN(NetworkSpec(layer_sizes=(8, 6, 3), seed=0))
        with pytest.raises(ConfigurationError):
            net.set_weight_matrices([np.zeros((6, 8))])


class TestBackpropGradients:
    """Finite-difference check of the full backward pass."""

    def test_weight_gradients_match_numeric(self):
        rng = np.random.default_rng(3)
        net = FeedforwardANN(NetworkSpec(layer_sizes=(5, 4, 3), seed=7))
        loss = CrossEntropyLoss()
        x = rng.normal(size=(6, 5))
        y = rng.integers(0, 3, size=6)

        scores = net.forward(x, train=True)
        _, grad = loss.value_and_grad(scores, y)
        net.backward(grad)

        layer = net.layers[0]
        analytic = layer.grad_weights.copy()
        eps = 1e-6
        for (i, j) in [(0, 0), (1, 2), (3, 4)]:
            layer.weights[i, j] += eps
            up, _ = loss.value_and_grad(net.forward(x), y)
            layer.weights[i, j] -= 2 * eps
            down, _ = loss.value_and_grad(net.forward(x), y)
            layer.weights[i, j] += eps
            numeric = (up - down) / (2 * eps)
            assert analytic[i, j] == pytest.approx(numeric, abs=1e-4)

    def test_bias_gradients_match_numeric(self):
        rng = np.random.default_rng(4)
        net = FeedforwardANN(NetworkSpec(layer_sizes=(4, 3, 2), seed=9))
        loss = CrossEntropyLoss()
        x = rng.normal(size=(5, 4))
        y = rng.integers(0, 2, size=5)
        scores = net.forward(x, train=True)
        _, grad = loss.value_and_grad(scores, y)
        net.backward(grad)
        layer = net.layers[-1]
        analytic = layer.grad_biases.copy()
        eps = 1e-6
        layer.biases[1] += eps
        up, _ = loss.value_and_grad(net.forward(x), y)
        layer.biases[1] -= 2 * eps
        down, _ = loss.value_and_grad(net.forward(x), y)
        layer.biases[1] += eps
        assert analytic[1] == pytest.approx((up - down) / (2 * eps), abs=1e-4)
