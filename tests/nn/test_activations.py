"""Tests of activation functions and their derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.nn.activations import ReLU, Sigmoid, Tanh, get_activation, softmax

FLOATS = st.floats(-50.0, 50.0)


def numeric_derivative(act, z, eps=1e-6):
    return (act.forward(z + eps) - act.forward(z - eps)) / (2 * eps)


class TestSigmoid:
    def test_range(self):
        s = Sigmoid()
        z = np.linspace(-100, 100, 1001)
        out = s.forward(z)
        assert np.all(out >= 0) and np.all(out <= 1)

    def test_midpoint(self):
        assert Sigmoid().forward(np.array([0.0]))[0] == pytest.approx(0.5)

    @settings(max_examples=50, deadline=None)
    @given(z=arrays(float, 7, elements=st.floats(-20, 20)))
    def test_derivative_matches_numeric(self, z):
        s = Sigmoid()
        a = s.forward(z)
        np.testing.assert_allclose(
            s.derivative(z, a), numeric_derivative(s, z), atol=1e-5
        )

    def test_extreme_inputs_do_not_overflow(self):
        out = Sigmoid().forward(np.array([-1e6, 1e6]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)


class TestTanhRelu:
    @settings(max_examples=50, deadline=None)
    @given(z=arrays(float, 5, elements=st.floats(-5, 5)))
    def test_tanh_derivative(self, z):
        t = Tanh()
        a = t.forward(z)
        np.testing.assert_allclose(
            t.derivative(z, a), numeric_derivative(t, z), atol=1e-5
        )

    def test_relu_kink(self):
        r = ReLU()
        z = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(r.forward(z), [0.0, 0.0, 3.0])
        np.testing.assert_array_equal(r.derivative(z, r.forward(z)), [0.0, 0.0, 1.0])


class TestRegistry:
    def test_lookup_all(self):
        for name in ("sigmoid", "tanh", "relu", "identity"):
            assert get_activation(name).name == name

    def test_lookup_case_insensitive(self):
        assert get_activation("Sigmoid").name == "sigmoid"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_activation("swish")


class TestSoftmax:
    def test_rows_sum_to_one(self):
        z = np.random.default_rng(0).normal(size=(8, 10))
        p = softmax(z)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)
        assert np.all(p > 0)

    def test_shift_invariance(self):
        z = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0), atol=1e-12)

    def test_large_logits_stable(self):
        p = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)
