"""Tests of fixed-point quantization (including hypothesis roundtrips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.nn import (
    FeedforwardANN,
    NetworkSpec,
    QFormat,
    dequantize_array,
    quantize_array,
    quantize_network,
)
from repro.nn.quantize import choose_qformat


class TestQFormat:
    def test_q1_6_range(self):
        fmt = QFormat(n_bits=8, frac_bits=6)
        assert fmt.min_value == pytest.approx(-2.0)
        assert fmt.max_value == pytest.approx(2.0 - 1 / 64)

    def test_bit_weights_double(self):
        fmt = QFormat(n_bits=8, frac_bits=6)
        weights = [fmt.bit_weight(b) for b in range(8)]
        for lo, hi in zip(weights[:-1], weights[1:]):
            assert hi == pytest.approx(2 * lo)
        assert weights[-1] == pytest.approx(2.0)  # MSB flip magnitude

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QFormat(n_bits=1)
        with pytest.raises(ConfigurationError):
            QFormat(n_bits=8, frac_bits=8)
        with pytest.raises(ConfigurationError):
            QFormat(n_bits=8, frac_bits=6).bit_weight(8)


class TestChooseQFormat:
    def test_small_weights_get_fine_resolution(self):
        assert choose_qformat(0.9, 8).frac_bits == 7

    def test_q1_6_for_weights_up_to_2(self):
        assert choose_qformat(1.5, 8).frac_bits == 6

    def test_larger_weights_coarser(self):
        assert choose_qformat(3.0, 8).frac_bits == 5

    def test_degenerate_zero(self):
        assert choose_qformat(0.0, 8).frac_bits == 7

    def test_unrepresentable_raises(self):
        with pytest.raises(ConfigurationError):
            choose_qformat(1e9, 8)


class TestRoundtrip:
    @settings(max_examples=100, deadline=None)
    @given(
        values=arrays(float, 16, elements=st.floats(-1.9, 1.9)),
        frac=st.integers(3, 7),
    )
    def test_roundtrip_error_within_half_lsb(self, values, frac):
        fmt = QFormat(n_bits=8, frac_bits=frac)
        clipped = np.clip(values, fmt.min_value, fmt.max_value)
        codes = quantize_array(clipped, fmt)
        restored = dequantize_array(codes, fmt)
        assert np.max(np.abs(restored - clipped)) <= 0.5 / fmt.scale + 1e-12

    def test_codes_within_mask(self):
        fmt = QFormat(8, 6)
        codes = quantize_array(np.linspace(-3, 3, 100), fmt)
        assert codes.dtype == np.uint16
        assert codes.max() <= fmt.code_mask

    def test_saturation_at_extremes(self):
        fmt = QFormat(8, 6)
        codes = quantize_array(np.array([-100.0, 100.0]), fmt)
        values = dequantize_array(codes, fmt)
        assert values[0] == pytest.approx(fmt.min_value)
        assert values[1] == pytest.approx(fmt.max_value)

    def test_dequantize_rejects_wide_codes(self):
        with pytest.raises(ConfigurationError):
            dequantize_array(np.array([256], dtype=np.uint16), QFormat(8, 6))

    def test_sign_bit_semantics(self):
        fmt = QFormat(8, 6)
        assert dequantize_array(np.array([0x80]), fmt)[0] == pytest.approx(-2.0)
        assert dequantize_array(np.array([0x7F]), fmt)[0] == pytest.approx(2.0 - 1 / 64)


class TestQuantizeNetwork:
    @pytest.fixture()
    def net(self):
        return FeedforwardANN(NetworkSpec(layer_sizes=(12, 8, 5), seed=3))

    def test_synapse_accounting(self, net):
        q = quantize_network(net)
        assert q.total_synapses == net.spec.n_synapses
        assert q.total_bits == 8 * net.spec.n_synapses

    def test_apply_changes_weights_slightly(self, net):
        before = [w.copy() for w in net.weight_matrices()]
        q = quantize_network(net, n_bits=8)
        q.apply_to(net)
        for b, a in zip(before, net.weight_matrices()):
            assert np.max(np.abs(b - a)) <= 0.5 / q.fmt.scale + 1e-12

    def test_clone_is_independent(self, net):
        q = quantize_network(net)
        c = q.clone()
        c.weight_codes[0][0, 0] ^= 0xFF
        assert q.weight_codes[0][0, 0] != c.weight_codes[0][0, 0]

    def test_layer_count_checked(self, net):
        q = quantize_network(net)
        other = FeedforwardANN(NetworkSpec(layer_sizes=(12, 8, 6, 5), seed=1))
        with pytest.raises(ConfigurationError):
            q.apply_to(other)

    def test_explicit_format_respected(self, net):
        fmt = QFormat(n_bits=6, frac_bits=4)
        q = quantize_network(net, fmt=fmt)
        assert q.fmt == fmt
        assert q.total_bits == 6 * net.spec.n_synapses
