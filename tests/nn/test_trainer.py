"""Tests of the SGD trainer on a small learnable problem."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import FeedforwardANN, NetworkSpec, SGDTrainer


def two_blob_problem(n=400, seed=0):
    """Linearly separable 2-class blobs: trainable in a couple of epochs."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=-1.0, scale=0.5, size=(n // 2, 4))
    x1 = rng.normal(loc=+1.0, scale=0.5, size=(n // 2, 4))
    x = np.vstack([x0, x1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    order = rng.permutation(n)
    return x[order], y[order]


class TestValidation:
    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ConfigurationError):
            SGDTrainer(epochs=0)
        with pytest.raises(ConfigurationError):
            SGDTrainer(learning_rate=-1.0)
        with pytest.raises(ConfigurationError):
            SGDTrainer(momentum=1.0)

    def test_rejects_mismatched_data(self):
        net = FeedforwardANN(NetworkSpec(layer_sizes=(4, 8, 2), seed=0))
        with pytest.raises(ConfigurationError):
            SGDTrainer(epochs=1).train(net, np.zeros((10, 4)), np.zeros(9, dtype=int))

    def test_patience_requires_validation(self):
        net = FeedforwardANN(NetworkSpec(layer_sizes=(4, 8, 2), seed=0))
        x, y = two_blob_problem()
        with pytest.raises(ConfigurationError):
            SGDTrainer(epochs=1, patience=2).train(net, x, y)


class TestLearning:
    def test_learns_blobs(self):
        x, y = two_blob_problem()
        net = FeedforwardANN(NetworkSpec(layer_sizes=(4, 16, 2), seed=0))
        result = SGDTrainer(epochs=10, batch_size=32, learning_rate=0.3,
                            seed=1).train(net, x, y)
        assert result.final_train_accuracy > 0.95
        assert result.train_loss[-1] < result.train_loss[0]

    def test_deterministic_training(self):
        x, y = two_blob_problem()
        accs = []
        for _ in range(2):
            net = FeedforwardANN(NetworkSpec(layer_sizes=(4, 16, 2), seed=0))
            res = SGDTrainer(epochs=3, seed=5).train(net, x, y)
            accs.append(res.train_accuracy[-1])
        assert accs[0] == accs[1]

    def test_mse_loss_with_sigmoid_output_learns(self):
        """The DeepLearnToolbox-fidelity configuration must also train."""
        x, y = two_blob_problem()
        spec = NetworkSpec(layer_sizes=(4, 16, 2), output_activation="sigmoid")
        net = FeedforwardANN(spec)
        res = SGDTrainer(epochs=12, loss="mse", learning_rate=0.5,
                         seed=2).train(net, x, y)
        assert res.final_train_accuracy > 0.9

    def test_early_stopping_halts(self):
        x, y = two_blob_problem()
        net = FeedforwardANN(NetworkSpec(layer_sizes=(4, 16, 2), seed=0))
        res = SGDTrainer(epochs=50, patience=2, seed=3).train(
            net, x, y, x_val=x[:50], y_val=y[:50]
        )
        assert res.epochs_run < 50

    def test_history_lengths_consistent(self):
        x, y = two_blob_problem()
        net = FeedforwardANN(NetworkSpec(layer_sizes=(4, 8, 2), seed=0))
        res = SGDTrainer(epochs=4, seed=1).train(net, x, y, x_val=x[:20], y_val=y[:20])
        assert len(res.train_loss) == res.epochs_run
        assert len(res.val_accuracy) == res.epochs_run
        assert res.wall_seconds > 0
