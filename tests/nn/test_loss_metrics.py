"""Tests of losses and metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import CrossEntropyLoss, MeanSquaredError, get_loss
from repro.nn.loss import one_hot
from repro.nn.metrics import accuracy, confusion_matrix, per_class_accuracy


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.array([0, 3]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        scores = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = CrossEntropyLoss().value_and_grad(scores, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_log_k(self):
        scores = np.zeros((4, 10))
        loss, _ = CrossEntropyLoss().value_and_grad(scores, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(6, 5))
        _, grad = CrossEntropyLoss().value_and_grad(scores, rng.integers(0, 5, 6))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)


class TestMse:
    def test_zero_for_exact_onehot(self):
        scores = one_hot(np.array([1, 0]), 3)
        loss, grad = MeanSquaredError().value_and_grad(scores, np.array([1, 0]))
        assert loss == pytest.approx(0.0)
        np.testing.assert_allclose(grad, 0.0)

    def test_registry(self):
        assert get_loss("mse").name == "mse"
        assert get_loss("cross_entropy").name == "cross_entropy"
        with pytest.raises(ConfigurationError):
            get_loss("hinge")


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            accuracy(np.array([]), np.array([]))

    def test_confusion_matrix_counts(self):
        cm = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3)
        assert cm[0, 0] == 1
        assert cm[1, 1] == 1
        assert cm[2, 1] == 1
        assert cm[2, 2] == 1
        assert cm.sum() == 4

    def test_per_class_accuracy_handles_absent_class(self):
        acc = per_class_accuracy(np.array([0, 0]), np.array([0, 0]), 3)
        assert acc[0] == pytest.approx(1.0)
        assert np.isnan(acc[1]) and np.isnan(acc[2])
