"""Tests of the synthetic digit generator and loader."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.nn.datasets import (
    SyntheticDigitConfig,
    generate_digit_images,
    glyph_distance_field,
    load_synthetic_digits,
)
from repro.nn.datasets.synth_digits import GLYPHS, render_digit
from repro.rng import ensure_rng


class TestGlyphs:
    def test_all_ten_digits_defined(self):
        assert sorted(GLYPHS) == list(range(10))

    def test_distance_field_geometry(self):
        field = glyph_distance_field(0)
        assert field.shape == (28, 28)
        assert field.min() < 1.0          # some pixel sits on the stroke
        assert field.max() > 5.0          # corners are far from the stroke

    def test_unknown_digit_rejected(self):
        with pytest.raises(DatasetError):
            glyph_distance_field(11)


class TestRender:
    def test_image_range_and_shape(self):
        img = render_digit(3, ensure_rng(0))
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_images_have_ink(self):
        for d in range(10):
            img = render_digit(d, ensure_rng(d))
            assert img.sum() > 5.0, f"digit {d} rendered blank"

    def test_centre_concentration(self):
        """Like MNIST, glyph mass concentrates centrally — the property
        behind the paper's input-layer resilience argument (Sec. VI-C)."""
        img = render_digit(8, ensure_rng(1))
        border = np.concatenate(
            [img[:2].ravel(), img[-2:].ravel(), img[:, :2].ravel(), img[:, -2:].ravel()]
        )
        centre = img[8:20, 8:20]
        assert centre.mean() > 5 * border.mean()

    def test_augmentation_varies_samples(self):
        rng = ensure_rng(5)
        a = render_digit(4, rng)
        b = render_digit(4, rng)
        assert np.abs(a - b).max() > 0.1


class TestGenerate:
    def test_shapes_and_balance(self):
        x, y = generate_digit_images(200, seed=1)
        assert x.shape == (200, 784)
        assert y.shape == (200,)
        counts = np.bincount(y, minlength=10)
        assert counts.min() == counts.max() == 20

    def test_deterministic(self):
        x1, y1 = generate_digit_images(50, seed=9)
        x2, y2 = generate_digit_images(50, seed=9)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_rejects_nonpositive(self):
        with pytest.raises(DatasetError):
            generate_digit_images(0)

    def test_config_validation(self):
        with pytest.raises(DatasetError):
            SyntheticDigitConfig(image_size=4)
        with pytest.raises(DatasetError):
            SyntheticDigitConfig(glyph_margin=20)


class TestLoader:
    def test_split_sizes(self):
        data = load_synthetic_digits(n_train=100, n_val=30, n_test=50, seed=2)
        assert len(data.y_train) == 100
        assert len(data.y_val) == 30
        assert len(data.y_test) == 50
        assert data.n_features == 784
        assert data.n_classes == 10

    def test_test_set_stable_under_train_resize(self):
        small = load_synthetic_digits(n_train=50, n_val=20, n_test=40, seed=3)
        big = load_synthetic_digits(n_train=150, n_val=20, n_test=40, seed=3)
        np.testing.assert_array_equal(small.x_test, big.x_test)

    def test_rejects_bad_sizes(self):
        with pytest.raises(DatasetError):
            load_synthetic_digits(n_train=0, n_val=1, n_test=1)
