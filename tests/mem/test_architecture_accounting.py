"""Tests of multi-bank architectures, config factories and accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.mem import (
    CellTables,
    SynapticMemoryArchitecture,
    base_architecture,
    compare_architectures,
    config1_architecture,
    config2_architecture,
)

SYNAPSES = [3000, 2000, 1000, 500, 100]


@pytest.fixture(scope="module")
def tables(tech):
    return CellTables.build(
        technology=tech,
        vdd_grid=(0.65, 0.75, 0.85, 0.95),
        n_samples=2000,
        use_cache=False,
    )


@pytest.fixture(scope="module")
def base75(tables):
    return base_architecture(SYNAPSES, tables, vdd=0.75)


class TestFactories:
    def test_base_has_no_8t(self, base75):
        assert base75.n_8t_cells == 0
        assert base75.n_words == sum(SYNAPSES)
        assert base75.msb_allocation == (0,) * 5

    def test_config1_uniform_allocation(self, tables):
        arch = config1_architecture(SYNAPSES, tables, vdd=0.65, msb_in_8t=3)
        assert arch.msb_allocation == (3,) * 5
        assert arch.n_8t_cells == 3 * sum(SYNAPSES)

    def test_config2_per_layer_allocation(self, tables):
        arch = config2_architecture(SYNAPSES, tables, vdd=0.65,
                                    msb_per_layer=[2, 3, 1, 1, 3])
        assert arch.msb_allocation == (2, 3, 1, 1, 3)
        assert "config2" in arch.name

    def test_mismatched_lengths_rejected(self, tables):
        with pytest.raises(ConfigurationError):
            config2_architecture(SYNAPSES, tables, vdd=0.65, msb_per_layer=[1, 2])

    def test_empty_architecture_rejected(self):
        with pytest.raises(ConfigurationError):
            SynapticMemoryArchitecture(name="x", banks=[], vdd=0.65)


class TestAggregates:
    def test_area_grows_with_protection(self, tables, base75):
        c1 = config1_architecture(SYNAPSES, tables, vdd=0.65, msb_in_8t=2)
        c2 = config1_architecture(SYNAPSES, tables, vdd=0.65, msb_in_8t=4)
        assert base75.area < c1.area < c2.area

    def test_access_power_positive(self, base75):
        assert base75.access_power > 0

    def test_at_voltage_preserves_banks(self, base75):
        lower = base75.at_voltage(0.65)
        assert lower.vdd == 0.65
        assert lower.banks is base75.banks
        assert lower.access_power < base75.access_power

    def test_describe_mentions_banks(self, base75):
        assert "bank0" in base75.describe()

    def test_fault_injector_layer_count(self, tables):
        arch = config2_architecture(SYNAPSES, tables, vdd=0.65,
                                    msb_per_layer=[2, 3, 1, 1, 3])
        injector = arch.fault_injector()
        assert injector.n_layers == 5
        # Central banks (1 MSB protected) see more exposed bits than bank1.
        assert (injector.layer_rates[2].p_total > 0).sum() > (
            injector.layer_rates[1].p_total > 0
        ).sum()


class TestComparison:
    def test_paper_area_arithmetic_config1(self, tables, base75):
        """(3,5) hybrid: 3/8 * 37% = 13.875% area overhead (Fig. 8(c))."""
        c1 = config1_architecture(SYNAPSES, tables, vdd=0.65, msb_in_8t=3)
        report = compare_architectures(c1, base75)
        assert report.area_overhead_pct == pytest.approx(13.875, abs=0.3)

    def test_hybrid_at_0p65_saves_access_power(self, tables, base75):
        c1 = config1_architecture(SYNAPSES, tables, vdd=0.65, msb_in_8t=3)
        report = compare_architectures(c1, base75)
        assert report.access_power_reduction_pct > 15.0
        assert report.leakage_power_reduction_pct > 5.0

    def test_config2_cheaper_area_than_config1_same_protection_top(self, tables, base75):
        """Sensitivity-driven allocation buys back area vs uniform n=3."""
        c1 = config1_architecture(SYNAPSES, tables, vdd=0.65, msb_in_8t=3)
        c2 = config2_architecture(SYNAPSES, tables, vdd=0.65,
                                  msb_per_layer=[2, 3, 1, 1, 3])
        r1 = compare_architectures(c1, base75)
        r2 = compare_architectures(c2, base75)
        assert r2.area_overhead_pct < r1.area_overhead_pct

    def test_same_architecture_zero_deltas(self, base75):
        report = compare_architectures(base75, base75)
        assert report.access_power_reduction_pct == pytest.approx(0.0)
        assert report.area_overhead_pct == pytest.approx(0.0)
        assert "access power" in report.summary()

    def test_iso_voltage_hybrid_costs_power(self, tables, base75):
        """At the *same* voltage the hybrid must cost more power (the
        saving comes only from the deeper voltage scaling it enables)."""
        c1_75 = config1_architecture(SYNAPSES, tables, vdd=0.75, msb_in_8t=3)
        report = compare_architectures(c1_75, base75)
        assert report.access_power_reduction_pct < 0.0
        assert report.leakage_power_reduction_pct < 0.0
