"""Tests of the SEC-ECC protection model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fault.model import BitErrorRates
from repro.mem.ecc import (
    EccFaultInjector,
    SecCode,
    ecc_area_factor,
    ecc_energy_factor,
    parity_bits_for,
)
from repro.nn import FeedforwardANN, NetworkSpec, quantize_network


def uniform_rates(p, n_bits=8):
    return BitErrorRates(
        vdd=0.65, n_bits=n_bits, msb_in_8t=0,
        p_read=np.full(n_bits, p), p_write=np.zeros(n_bits),
    )


@pytest.fixture()
def image():
    net = FeedforwardANN(NetworkSpec(layer_sizes=(20, 12, 4), seed=2))
    return quantize_network(net, n_bits=8)


class TestSecCode:
    def test_hamming_bound_for_8_data_bits(self):
        assert parity_bits_for(8) == 4
        assert SecCode(8).n_total == 12
        assert SecCode(8).storage_overhead == pytest.approx(0.5)

    def test_hamming_bound_other_widths(self):
        assert parity_bits_for(4) == 3
        assert parity_bits_for(11) == 4
        assert parity_bits_for(12) == 5

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            parity_bits_for(0)

    def test_cost_factors(self):
        code = SecCode(8)
        assert ecc_area_factor(code) == pytest.approx(1.5)
        assert ecc_energy_factor(code, decoder_overhead=0.0) == pytest.approx(1.5)
        assert ecc_energy_factor(code) > 1.5
        with pytest.raises(ConfigurationError):
            ecc_energy_factor(code, decoder_overhead=-0.1)


class TestEccFaultInjector:
    def test_zero_rate_is_clean(self, image):
        injector = EccFaultInjector([uniform_rates(0.0)] * 2)
        out = injector.inject(image, seed=1)
        for a, b in zip(out.weight_codes, image.weight_codes):
            np.testing.assert_array_equal(a, b)

    def test_rejects_hybrid_rates(self):
        rates = BitErrorRates(
            vdd=0.65, n_bits=8, msb_in_8t=3,
            p_read=np.full(8, 0.01), p_write=np.zeros(8),
        )
        with pytest.raises(ConfigurationError):
            EccFaultInjector([rates])

    def test_rejects_nonuniform_rates(self, image):
        p = np.full(8, 0.01)
        p[0] = 0.5
        rates = BitErrorRates(vdd=0.65, n_bits=8, msb_in_8t=0,
                              p_read=p, p_write=np.zeros(8))
        injector = EccFaultInjector([rates] * 2)
        with pytest.raises(ConfigurationError):
            injector.inject(image, seed=1)

    def test_single_errors_fully_corrected(self, image):
        """At tiny per-bit rates almost all faulty words carry a single
        error, so post-decode corruption must collapse by orders of
        magnitude relative to an uncoded memory."""
        p = 1e-3
        injector = EccFaultInjector([uniform_rates(p)] * 2)
        expected = injector.expected_flips(image)
        uncoded = image.total_synapses * 8 * p
        assert expected < 0.05 * uncoded

    def test_expected_flips_matches_sampling_at_high_p(self, image):
        injector = EccFaultInjector([uniform_rates(0.05)] * 2)
        analytic = injector.expected_flips(image)
        counts = []
        for trial in range(30):
            out = injector.inject(image, seed=trial)
            flipped = 0
            for clean, bad in zip(image.weight_codes, out.weight_codes):
                diff = (clean ^ bad).astype(np.uint16).view(np.uint8)
                flipped += int(np.unpackbits(diff).sum())
            for clean, bad in zip(image.bias_codes, out.bias_codes):
                diff = (clean ^ bad).astype(np.uint16).view(np.uint8)
                flipped += int(np.unpackbits(diff).sum())
            counts.append(flipped)
        assert np.mean(counts) == pytest.approx(analytic, rel=0.25)

    def test_deterministic_given_seed(self, image):
        injector = EccFaultInjector([uniform_rates(0.1)] * 2)
        a = injector.inject(image, seed=5)
        b = injector.inject(image, seed=5)
        for ca, cb in zip(a.weight_codes, b.weight_codes):
            np.testing.assert_array_equal(ca, cb)

    def test_layer_count_checked(self, image):
        injector = EccFaultInjector([uniform_rates(0.1)])
        with pytest.raises(ConfigurationError):
            injector.inject(image)

    def test_code_width_must_match_words(self):
        with pytest.raises(ConfigurationError):
            EccFaultInjector([uniform_rates(0.1, n_bits=8)], code=SecCode(6))
