"""Tests of word formats and hybrid banks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem import CellTables, HybridBank, WordFormat


@pytest.fixture(scope="module")
def tables(tech):
    return CellTables.build(
        technology=tech,
        vdd_grid=(0.65, 0.75, 0.85, 0.95),
        n_samples=2000,
        use_cache=False,
    )


class TestWordFormat:
    def test_labels_match_paper_notation(self):
        assert WordFormat(8, 3).label == "(3,5)"
        assert WordFormat(8, 0).label == "(0,8)"

    def test_classification_flags(self):
        assert WordFormat(8, 0).is_all_6t
        assert WordFormat(8, 8).is_all_8t
        assert WordFormat(8, 3).is_hybrid
        assert not WordFormat(8, 0).is_hybrid

    def test_bit_is_8t_boundary(self):
        w = WordFormat(8, 3)
        assert not w.bit_is_8t(4)
        assert w.bit_is_8t(5)
        assert w.bit_is_8t(7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WordFormat(8, 9)
        with pytest.raises(ConfigurationError):
            WordFormat(0, 0)
        with pytest.raises(ConfigurationError):
            WordFormat(8, 3).bit_is_8t(8)


class TestHybridBank:
    def test_cell_counts(self, tables):
        bank = HybridBank("b", n_words=1000, word=WordFormat(8, 3), tables=tables)
        assert bank.n_8t_cells == 3000
        assert bank.n_6t_cells == 5000
        assert bank.n_bits_total == 8000

    def test_rejects_empty_bank(self, tables):
        with pytest.raises(ConfigurationError):
            HybridBank("b", n_words=0, word=WordFormat(8, 3), tables=tables)

    def test_area_monotone_in_protection(self, tables):
        areas = [
            HybridBank("b", 1000, WordFormat(8, n), tables).area
            for n in range(9)
        ]
        assert all(a < b for a, b in zip(areas, areas[1:]))

    def test_hybrid_word_energy_between_pure_words(self, tables):
        e6 = HybridBank("b", 10, WordFormat(8, 0), tables).read_energy_per_word(0.75)
        e8 = HybridBank("b", 10, WordFormat(8, 8), tables).read_energy_per_word(0.75)
        eh = HybridBank("b", 10, WordFormat(8, 4), tables).read_energy_per_word(0.75)
        assert e6 < eh < e8

    def test_access_power_drops_with_vdd(self, tables):
        bank = HybridBank("b", 1000, WordFormat(8, 3), tables)
        assert bank.access_power(0.65) < bank.access_power(0.95)

    def test_leakage_scales_with_words(self, tables):
        small = HybridBank("b", 500, WordFormat(8, 2), tables)
        big = HybridBank("b", 1000, WordFormat(8, 2), tables)
        assert big.leakage_power(0.75) == pytest.approx(2 * small.leakage_power(0.75))

    def test_bit_error_rates_protect_msbs(self, tables):
        bank = HybridBank("b", 100, WordFormat(8, 3), tables)
        rates = bank.bit_error_rates(0.65)
        assert rates.msb_in_8t == 3
        assert np.all(rates.p_total[5:] < 1e-4)
        assert np.all(rates.p_total[:5] > rates.p_total[7])
