"""Voltage-scaling exploration: where does YOUR network's cliff sit?

Run with::

    python examples/voltage_scaling_study.py [--fine]

Reproduces the paper's Fig. 7 experiment and then goes further: it
sweeps a finer voltage grid around the accuracy cliff and reports the
minimum safe operating voltage for three different protection levels —
the kind of question a designer adopting this library would actually
ask.  ``--fine`` doubles the sweep resolution.
"""

import argparse

from repro.core import CircuitToSystemSimulator, format_table, train_benchmark_ann
from repro.mem import CellTables


def minimum_safe_vdd(sim, msb_in_8t, vdds, max_drop=0.01, seed=0):
    """Lowest voltage on the grid keeping the accuracy drop within budget."""
    safe = None
    for vdd in sorted(vdds, reverse=True):
        memory = (sim.base_memory(vdd) if msb_in_8t == 0
                  else sim.config1_memory(vdd, msb_in_8t))
        result = sim.evaluate(memory, seed=seed)
        if result.accuracy_drop <= max_drop:
            safe = vdd
        else:
            break
    return safe


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fine", action="store_true",
                        help="sweep a 12.5 mV grid instead of 25 mV")
    args = parser.parse_args()

    model = train_benchmark_ann()
    tables = CellTables.build(n_samples=8000)
    sim = CircuitToSystemSimulator(model, tables=tables, n_trials=3)

    step = 0.0125 if args.fine else 0.025
    vdds = [round(0.625 + i * step, 4) for i in range(int(0.325 / step) + 1)]

    # Accuracy profile of the plain 6T memory across the sweep.
    rows = []
    for vdd in reversed(vdds):
        result = sim.evaluate(sim.base_memory(vdd), seed=1)
        rows.append([vdd, 100 * result.mean_accuracy,
                     100 * result.accuracy_drop])
    print("all-6T accuracy profile:")
    print(format_table(["VDD", "accuracy %", "drop %"], rows,
                       float_fmt="{:.2f}"))
    print()

    # Minimum safe voltage per protection level (<1% drop).
    rows = []
    for n in (0, 1, 2, 3, 4):
        safe = minimum_safe_vdd(sim, n, vdds, max_drop=0.01, seed=2)
        label = "all 6T" if n == 0 else f"hybrid ({n},{8 - n})"
        rows.append([label, "none" if safe is None else f"{safe:.3f} V"])
    print("minimum safe operating voltage (<1% accuracy drop):")
    print(format_table(["memory", "min safe VDD"], rows))
    print()
    print("Each protected MSB buys additional voltage headroom; beyond 3-4")
    print("MSBs the returns vanish — the trade Fig. 8 of the paper captures.")


if __name__ == "__main__":
    main()
