"""Tiered-store smoke: cold fleet over a warm object store, then a drill.

This is the end-to-end acceptance script of the tiered cache
(CI runs it on every push):

1. start a fake object store as a real subprocess via the CLI
   (``repro-sram objectstore``), parsing its ephemeral endpoint URL,
2. run a dispatcher + worker fleet at one voltage point with tiered
   stores (``memory LRU -> directory -> object store``) over **cold**
   local caches, which warms the remote tier through write-behind,
3. run a second fleet with *fresh* (cold) local caches against the now
   warm remote and assert **zero shard recomputation** — every job is a
   dispatcher-side store hit, no worker assignment happens, and the
   merged result is byte-identical to the monolithic ``analyze`` answer,
4. run a third fleet at a different voltage point and ``SIGKILL`` the
   object store mid-run: the run must still complete byte-identically
   (degradation is fail-open — a dead store degrades caching, never
   correctness) while the dispatcher's ``stats`` probe reports remote
   tier errors.

Run it directly::

    PYTHONPATH=src python examples/tiered_store_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile
import threading
import time

from repro.devices import ptm22
from repro.distributed import ObjectStore, ShardDispatcher
from repro.runtime import make_tiered_store
from repro.serving.server import request_stats
from repro.sram import make_cell
from repro.sram.montecarlo import MonteCarloAnalyzer

SAMPLES = int(os.environ.get("SMOKE_SAMPLES", "8000"))
SHARDS = 8
WARM_VDD = 0.70
DRILL_VDD = 0.75


def spawn_object_store():
    """Start ``repro-sram objectstore`` and parse its endpoint URL."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "objectstore",
         "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, text=True, env=os.environ.copy(),
    )
    line = process.stdout.readline().strip()
    url = line.rsplit(" ", 1)[-1]
    assert url.startswith("http://"), f"unexpected banner: {line!r}"
    return process, url


def spawn_worker(host, port, cache_dir, store_url, name):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", f"{host}:{port}", "--cache-dir", cache_dir,
         "--store-url", store_url, "--name", name],
        env=os.environ.copy(),
    )


def run_fleet(analyzer, vdd, store_url, kill=None):
    """One dispatch over a fleet whose local cache tiers start cold.

    Returns ``(rates, dispatch_stats, probe)`` where ``probe`` is the
    dispatcher's TCP ``stats`` reply (the same document
    ``repro-sram dispatch --stats`` prints, including the nested
    ``store`` block).  ``kill``, when given, is invoked as soon as the
    dispatcher hands out its first shard assignment.
    """
    store = make_tiered_store(
        cache_dir=tempfile.mkdtemp(prefix="repro-tier-dispatch-"),
        store_url=store_url,
    )
    dispatcher = ShardDispatcher(
        store=store, heartbeat_interval=0.2, heartbeat_timeout=1.0,
    )
    host, port = dispatcher.start()
    worker = spawn_worker(
        host, port, tempfile.mkdtemp(prefix="repro-tier-worker-"),
        store_url, "w0",
    )
    try:
        dispatcher.await_workers(1, timeout=120)
        outcome = {}

        def drive():
            outcome["rates"] = analyzer.analyze_sharded(
                vdd, shards=SHARDS, dispatcher=dispatcher
            )

        run = threading.Thread(target=drive)
        run.start()
        if kill is not None:
            deadline = time.monotonic() + 120
            while (dispatcher.stats.assignments == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert dispatcher.stats.assignments > 0, (
                "no assignment before the drill kill"
            )
            kill()
        run.join(timeout=600)
        assert not run.is_alive(), "dispatch did not complete"
        probe = request_stats(host, port)
        return outcome["rates"], dispatcher.stats, probe
    finally:
        worker.terminate()
        worker.wait(timeout=30)
        dispatcher.close()
        store.close()


def main() -> int:
    analyzer = MonteCarloAnalyzer(
        cell=make_cell("6t", ptm22()),
        n_samples=SAMPLES,
        block_samples=max(1, SAMPLES // SHARDS),
    )
    print(f"monolithic references: {SAMPLES} samples at "
          f"{WARM_VDD} V and {DRILL_VDD} V ...")
    reference = {
        WARM_VDD: json.dumps(analyzer.analyze(WARM_VDD).to_dict(),
                             sort_keys=True),
        DRILL_VDD: json.dumps(analyzer.analyze(DRILL_VDD).to_dict(),
                              sort_keys=True),
    }

    store_process, url = spawn_object_store()
    print(f"object store subprocess at {url}")
    try:
        # Phase A: cold everything — computes, write-behind warms the
        # remote tier (run_fleet closes the dispatcher store, draining
        # the flusher queue before we look at the remote).
        rates, stats, _ = run_fleet(analyzer, WARM_VDD, url)
        assert json.dumps(rates.to_dict(), sort_keys=True) == \
            reference[WARM_VDD], "phase A differs from monolithic analyze"
        assert stats.computed == SHARDS, stats.summary()
        remote = ObjectStore(url).remote_stats()
        assert remote["objects"] >= SHARDS, remote
        print(f"phase A (warm-up) OK: {stats.computed} shards computed, "
              f"{remote['objects']} objects in the store")

        # Phase B: cold fleet, warm object store — zero recomputation.
        rates, stats, probe = run_fleet(analyzer, WARM_VDD, url)
        assert json.dumps(rates.to_dict(), sort_keys=True) == \
            reference[WARM_VDD], "phase B differs from monolithic analyze"
        assert stats.store_hits == SHARDS, stats.summary()
        assert stats.computed == 0, stats.summary()
        assert stats.assignments == 0, stats.summary()
        remote_tier = probe["store"]["tiers"]["remote"]
        assert remote_tier["hits"] == SHARDS, probe["store"]
        assert remote_tier["errors"] == 0, probe["store"]
        print(f"phase B (cold fleet, warm store) OK: {stats.store_hits} "
              "store hits, 0 computed, 0 assignments, byte-identical")

        # Phase C: degradation drill — SIGKILL the store mid-run at a
        # voltage point the remote has never seen.
        def kill_store():
            store_process.kill()
            store_process.wait(timeout=30)
            print("object store killed (SIGKILL) mid-run")

        rates, stats, probe = run_fleet(
            analyzer, DRILL_VDD, url, kill=kill_store
        )
        assert json.dumps(rates.to_dict(), sort_keys=True) == \
            reference[DRILL_VDD], "phase C differs from monolithic analyze"
        assert stats.completed == SHARDS, stats.summary()
        remote_tier = probe["store"]["tiers"]["remote"]
        assert remote_tier["errors"] > 0, probe["store"]
        print("phase C (degradation drill) OK: byte-identical output with "
              f"{remote_tier['errors']} remote errors reported by the "
              "stats probe")
        print("tiered-store smoke OK")
        return 0
    finally:
        if store_process.poll() is None:
            store_process.kill()
        store_process.wait(timeout=30)
        store_process.stdout.close()


if __name__ == "__main__":
    sys.exit(main())
