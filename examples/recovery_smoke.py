"""Crash-recovery smoke: SIGKILL the *dispatcher* mid-run, resume on its journal.

This is the end-to-end acceptance script of the durable-dispatch
subsystem (CI runs it as the ``recovery-drill`` job):

1. compute the monolithic single-process oracle for one voltage point,
2. spawn two genuine CLI workers with ``--reconnect`` pointed at a port
   nothing is listening on yet,
3. start dispatcher incarnation #1 (a subprocess of this same script,
   ``--driver`` mode) with ``--journal-dir``, driving an 8-shard sweep,
4. ``SIGKILL`` the dispatcher the moment the journal records at least
   one completion — the control-plane crash, with shards in flight,
5. start incarnation #2 on the **same** journal and store; the workers
   rejoin it through their reconnect loop (never respawned),
6. assert the resumed sweep merges **byte-identically** to the oracle,
   that every journaled completion was skipped (zero recomputation),
   and that only the unfinished remainder was replayed.

Run it directly::

    PYTHONPATH=src python examples/recovery_smoke.py

``SMOKE_SAMPLES`` scales the population; ``RECOVERY_ARTIFACT_DIR``
copies the journal there afterwards (the CI job uploads it).
"""

import argparse
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time

SAMPLES = int(os.environ.get("SMOKE_SAMPLES", "12000"))
SHARDS = 8
VDD = 0.70


def canon(document) -> str:
    return json.dumps(document, sort_keys=True)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_worker(port, store_dir, name):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", f"127.0.0.1:{port}", "--cache-dir", store_dir,
         "--name", name, "--reconnect", "--reconnect-backoff", "0.2"],
        env=os.environ.copy(),
    )


def spawn_driver(port, store_dir, journal_dir, out_path):
    return subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--driver",
         "--port", str(port), "--store-dir", store_dir,
         "--journal-dir", journal_dir, "--out", out_path],
        env=os.environ.copy(),
    )


def count_done_records(journal_path) -> int:
    """Completions currently durable in the journal (flushed per
    append, so reading the live file is exact)."""
    try:
        with open(journal_path, "r", encoding="utf-8") as handle:
            return sum(1 for line in handle if '"rec":"done"' in line)
    except FileNotFoundError:
        return 0


def run_driver(args) -> int:
    """One dispatcher incarnation: serve the journal-backed dispatcher
    on the agreed port, drive the sweep, write the evidence as JSON."""
    from repro.devices import ptm22
    from repro.distributed import DirectoryStore, RunJournal, ShardDispatcher
    from repro.sram import make_cell
    from repro.sram.montecarlo import MonteCarloAnalyzer

    analyzer = MonteCarloAnalyzer(
        cell=make_cell("6t", ptm22()),
        n_samples=SAMPLES,
        block_samples=max(1, SAMPLES // SHARDS),
    )
    with ShardDispatcher(
        store=DirectoryStore(args.store_dir),
        journal=RunJournal(args.journal_dir),
        heartbeat_interval=0.2,
        heartbeat_timeout=1.0,
    ) as dispatcher:
        dispatcher.start("127.0.0.1", args.port)
        print(f"driver {os.getpid()}: dispatching on port {args.port}")
        dispatcher.await_workers(2, timeout=120)
        rates = analyzer.analyze_sharded(
            VDD, shards=SHARDS, dispatcher=dispatcher
        )
        evidence = {
            "rates": rates.to_dict(),
            "stats": dispatcher.stats.to_dict(),
            "flight": [e["kind"] for e in dispatcher.flight.snapshot()],
        }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(evidence, handle)
    print(f"driver {os.getpid()}: sweep complete, evidence at {args.out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--driver", action="store_true",
                        help="internal: run one dispatcher incarnation")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--store-dir", default=None)
    parser.add_argument("--journal-dir", default=None)
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    if args.driver:
        return run_driver(args)

    from repro.devices import ptm22
    from repro.sram import make_cell
    from repro.sram.montecarlo import MonteCarloAnalyzer

    print(f"monolithic oracle: {SAMPLES} samples at {VDD} V ...")
    oracle = MonteCarloAnalyzer(
        cell=make_cell("6t", ptm22()),
        n_samples=SAMPLES,
        block_samples=max(1, SAMPLES // SHARDS),
    ).analyze(VDD)

    work_dir = tempfile.mkdtemp(prefix="repro-recovery-smoke-")
    store_dir = os.path.join(work_dir, "store")
    journal_dir = os.path.join(work_dir, "journal")
    journal_path = os.path.join(journal_dir, "journal.jsonl")
    out_path = os.path.join(work_dir, "evidence.json")
    port = free_port()

    workers = [spawn_worker(port, store_dir, name) for name in ("w1", "w2")]
    first = spawn_driver(port, store_dir, journal_dir, out_path)
    second = None
    try:
        # SIGKILL incarnation #1 once at least one completion is
        # durable but (normally) before the sweep finishes.
        deadline = time.monotonic() + 300
        while count_done_records(journal_path) < 1:
            assert time.monotonic() < deadline, (
                "journal never recorded a completion"
            )
            assert first.poll() is None, (
                f"driver exited early (rc {first.returncode}) — "
                f"it was supposed to be killed mid-run"
            )
            time.sleep(0.005)
        first.kill()
        first.wait(timeout=30)
        done_at_kill = count_done_records(journal_path)
        print(f"dispatcher SIGKILLed with {done_at_kill}/{SHARDS} "
              f"completion(s) journaled")
        assert done_at_kill < SHARDS, (
            "sweep finished before the kill; raise SMOKE_SAMPLES"
        )
        for worker in workers:
            assert worker.poll() is None, (
                "a worker died with the dispatcher instead of entering "
                "its reconnect loop"
            )

        # Incarnation #2: same journal, same store, same port.  The
        # workers were never touched — they rejoin via --reconnect.
        second = spawn_driver(port, store_dir, journal_dir, out_path)
        rc = second.wait(timeout=600)
        assert rc == 0, f"restarted dispatcher failed (rc {rc})"
        with open(out_path, "r", encoding="utf-8") as handle:
            evidence = json.load(handle)

        stats = evidence["stats"]
        identical = canon(evidence["rates"]) == canon(oracle.to_dict())
        assert identical, "resumed merge differs from the monolithic oracle"
        assert stats["journal_skipped"] == done_at_kill, (
            f"journaled completions recomputed: skipped "
            f"{stats['journal_skipped']}, expected {done_at_kill}"
        )
        assert stats["journal_replayed"] == SHARDS - done_at_kill, (
            f"replayed {stats['journal_replayed']}, "
            f"expected {SHARDS - done_at_kill}"
        )
        assert stats["computed"] <= SHARDS - done_at_kill, (
            "journaled-complete work was recomputed"
        )
        assert stats["active_workers"] == 2, (
            "workers did not rejoin the restarted dispatcher"
        )
        assert "journal_open" in evidence["flight"]
        assert "journal_replay" in evidence["flight"]
        # The restarted dispatcher's close() sends the fleet a clean
        # shutdown, so by now each worker has either exited 0 (served
        # both incarnations through one --reconnect lifetime) or is
        # still draining.  A nonzero exit would mean a worker *failed*
        # (exhausted re-dials) rather than rode out the restart.
        for worker in workers:
            assert worker.poll() in (None, 0), (
                f"a worker failed (rc {worker.returncode}) instead of "
                f"riding out the restart"
            )
        print(f"recovery smoke OK: byte-identical resume, "
              f"{stats['journal_skipped']} skipped / "
              f"{stats['journal_replayed']} replayed, "
              f"{stats['computed']} computed after restart")
        return 0
    finally:
        artifact_dir = os.environ.get("RECOVERY_ARTIFACT_DIR")
        if artifact_dir and os.path.exists(journal_path):
            os.makedirs(artifact_dir, exist_ok=True)
            shutil.copy(journal_path, os.path.join(artifact_dir,
                                                   "journal.jsonl"))
        for proc in [first, second, *workers]:
            if proc is not None and proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
