"""ECC or hybrid cells? — comparing two ways to protect synaptic SRAM.

Run with::

    python examples/ecc_vs_hybrid.py [--vdd 0.65]

A memory designer asked to voltage-scale an on-chip weight store has two
classical options: add an error-correcting code over the existing 6T
array, or re-architect with robust cells where it matters (the paper's
significance-driven hybrid).  This example evaluates both on equal
footing — accuracy under the same bitcell failure statistics, plus area
and access-power accounting — and sweeps the supply to show where each
approach breaks down.
"""

import argparse

from repro.core import CircuitToSystemSimulator, format_table, train_benchmark_ann
from repro.fault.evaluate import evaluate_under_faults
from repro.mem import CellTables
from repro.mem.ecc import (
    EccFaultInjector,
    SecCode,
    ecc_area_factor,
    ecc_energy_factor,
)


def evaluate_ecc(sim, vdd, code, seed=0):
    """Accuracy + cost of a SEC-ECC-protected all-6T memory at ``vdd``."""
    model = sim.model
    plain = sim.base_memory(vdd)
    injector = EccFaultInjector(
        [bank.bit_error_rates(vdd) for bank in plain.banks], code=code
    )
    evaluation = evaluate_under_faults(
        model.network, model.image, injector,
        model.dataset.x_test, model.dataset.y_test,
        n_trials=3, seed=seed,
    )
    baseline = sim.baseline_memory()
    area_pct = 100.0 * (ecc_area_factor(code) * plain.area / baseline.area - 1.0)
    power_pct = 100.0 * (
        1.0 - ecc_energy_factor(code) * plain.access_power / baseline.access_power
    )
    return evaluation, power_pct, area_pct


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vdd", type=float, default=0.65)
    args = parser.parse_args()

    model = train_benchmark_ann()
    sim = CircuitToSystemSimulator(model, tables=CellTables.build(n_samples=8000),
                                   n_trials=3)
    code = SecCode(n_data=model.image.fmt.n_bits)

    # Head-to-head at the requested voltage.
    rows = []
    hybrid = sim.config1_memory(args.vdd, msb_in_8t=3)
    ev = sim.evaluate(hybrid, seed=1)
    cmp = sim.compare(hybrid)
    rows.append(["hybrid (3,5)", 100 * ev.mean_accuracy,
                 cmp.access_power_reduction_pct, cmp.area_overhead_pct])

    ev, power, area = evaluate_ecc(sim, args.vdd, code, seed=2)
    rows.append([f"SEC-ECC ({code.n_total},{code.n_data})",
                 100 * ev.mean_accuracy, power, area])

    plain = sim.base_memory(args.vdd)
    ev = sim.evaluate(plain, seed=3)
    cmp = sim.compare(plain)
    rows.append(["plain 6T", 100 * ev.mean_accuracy,
                 cmp.access_power_reduction_pct, cmp.area_overhead_pct])

    print(f"protection comparison at {args.vdd} V "
          "(power/area vs 6T @ 0.75 V):")
    print(format_table(
        ["memory", "accuracy %", "access-power red. %", "area overhead %"],
        rows, float_fmt="{:.2f}",
    ))
    print()

    # Where does ECC stop working?  Sweep the supply.
    rows = []
    for vdd in (0.75, 0.70, 0.675, 0.65, 0.625):
        ecc_ev, _, _ = evaluate_ecc(sim, vdd, code, seed=4)
        hyb_ev = sim.evaluate(sim.config1_memory(vdd, 3), seed=5)
        rows.append([vdd, 100 * ecc_ev.mean_accuracy, 100 * hyb_ev.mean_accuracy])
    print("accuracy vs VDD:")
    print(format_table(["VDD", "SEC-ECC 6T %", "hybrid (3,5) %"], rows,
                       float_fmt="{:.2f}"))
    print()
    print("SEC corrects the sparse single-bit failures of mild scaling, but")
    print("collapses once multi-bit words become common — while costing 50%")
    print("area. The hybrid's MSB protection holds to lower voltages at a")
    print("quarter of the overhead: significance beats redundancy here.")


if __name__ == "__main__":
    main()
