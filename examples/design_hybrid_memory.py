"""Design a sensitivity-driven hybrid memory for a custom network.

Run with::

    python examples/design_hybrid_memory.py [--budget 1.0] [--vdd 0.65]

The full Config-2 design flow a user would run on their own model:

1. train the network (here: the benchmark digit classifier);
2. measure the per-layer synaptic sensitivity profile;
3. let the greedy allocator pick per-bank MSB protection under an
   accuracy budget;
4. report the resulting accuracy / power / area against both the
   iso-stability 6T baseline and the uniform Config-1 alternative.
"""

import argparse

from repro.core import (
    CircuitToSystemSimulator,
    allocate_msbs,
    format_table,
    layer_sensitivity_profile,
    train_benchmark_ann,
)
from repro.mem import CellTables


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=1.0,
                        help="accuracy budget in percent (default 1.0)")
    parser.add_argument("--vdd", type=float, default=0.65,
                        help="hybrid operating voltage (default 0.65)")
    args = parser.parse_args()

    model = train_benchmark_ann()
    tables = CellTables.build(n_samples=8000)
    sim = CircuitToSystemSimulator(model, tables=tables, n_trials=3)

    # Step 2: sensitivity profile (the evidence behind the allocation).
    profile = layer_sensitivity_profile(model, n_trials=5, seed=7)
    print(profile.summary())
    print(f"per-synapse ranking (most sensitive first): "
          f"{profile.per_synapse_ranking}")
    print()

    # Step 3: greedy allocation under the budget, guided by sensitivity.
    hint = list(reversed(profile.per_synapse_ranking))  # resilient first
    result = allocate_msbs(
        sim, vdd=args.vdd, max_accuracy_drop=args.budget / 100.0,
        start_msb=3, n_trials=3, seed=8, order_hint=hint,
    )
    print(f"searched allocation: {result.summary()}")
    print()

    # Step 4: the decision table.
    candidates = [
        ("6T @ 0.75 V (baseline)", sim.baseline_memory()),
        ("6T @ scaled VDD", sim.base_memory(args.vdd)),
        ("Config 1 (3,5)", sim.config1_memory(args.vdd, 3)),
        (f"Config 2 {result.msb_per_layer}",
         sim.config2_memory(args.vdd, result.msb_per_layer)),
    ]
    rows = []
    for label, memory in candidates:
        evaluation = sim.evaluate(memory, seed=9)
        comparison = sim.compare(memory)
        rows.append(
            [label, 100 * evaluation.mean_accuracy,
             comparison.access_power_reduction_pct,
             comparison.area_overhead_pct]
        )
    print(format_table(
        ["memory", "accuracy %", "access-power red. %", "area overhead %"],
        rows, float_fmt="{:.2f}",
    ))


if __name__ == "__main__":
    main()
