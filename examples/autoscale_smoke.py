"""Autoscaler smoke: a controller grows a real fleet 1 -> 3 -> drain.

This is the end-to-end acceptance script of the autoscaling controller
(CI runs it on every push):

1. start a :class:`~repro.distributed.ShardDispatcher` on localhost,
2. start an :class:`~repro.distributed.AutoscaleController` against it
   — real CLI worker *subprocesses*, the real ``stats`` probe, no fakes,
3. with the queue idle, watch the pool settle at ``min_workers`` (1),
4. dispatch a 60-shard Monte-Carlo voltage point and watch the backlog
   signal scale the pool to ``max_workers`` (3) mid-run,
5. after the queue drains, watch the idle pool scale back down, then
   stop the controller and assert every managed worker is reaped,
6. assert the merged result is **byte-identical** to the monolithic
   single-host ``analyze`` answer — workers joining and leaving
   mid-run must never show in the numbers.

Run it directly::

    PYTHONPATH=src python examples/autoscale_smoke.py
"""

import json
import os
import sys
import tempfile
import threading
import time

# A fresh result cache per run: shard jobs are content-addressed, so a
# stale REPRO_CACHE_DIR from an earlier smoke run would satisfy every
# job instantly and the scale-up would have nothing to react to.
os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-autoscale-cache-")

from repro.devices import ptm22  # noqa: E402
from repro.distributed import (  # noqa: E402
    AutoscaleController,
    AutoscalePolicy,
    DirectoryStore,
    ShardDispatcher,
)
from repro.sram import make_cell  # noqa: E402
from repro.sram.montecarlo import MonteCarloAnalyzer  # noqa: E402

# Deep enough that the queue outlives worker spawn + registration
# (a worker subprocess takes ~1-2 s to come up): ~60 shards of ~10k
# samples give the controller several seconds of visible backlog.
SAMPLES = int(os.environ.get("SMOKE_SAMPLES", "600000"))
SHARDS = 60
VDD = 0.70


def await_condition(what, predicate, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def main() -> int:
    analyzer = MonteCarloAnalyzer(
        cell=make_cell("6t", ptm22()),
        n_samples=SAMPLES,
        block_samples=max(1, SAMPLES // SHARDS),
    )
    print(f"monolithic reference: {SAMPLES} samples at {VDD} V ...")
    reference = analyzer.analyze(VDD)

    store_dir = tempfile.mkdtemp(prefix="repro-autoscale-smoke-")
    dispatcher = ShardDispatcher(
        store=DirectoryStore(store_dir),
        heartbeat_interval=0.2,
        heartbeat_timeout=2.0,
    )
    host, port = dispatcher.start()
    print(f"dispatcher on {host}:{port}, store {store_dir}")

    controller = AutoscaleController(
        host, port,
        policy=AutoscalePolicy(
            min_workers=1, max_workers=3,
            backlog_per_worker=3,  # 9 queued shards ask for 3 workers
            poll_interval=0.2,
        ),
        cache_dir=store_dir,
    )
    try:
        with controller:
            # Idle queue: the pool settles at min_workers.
            dispatcher.await_workers(1, timeout=120)
            await_condition("initial pool of 1", lambda: controller.alive == 1)
            print("pool at min_workers=1; dispatching "
                  f"{SHARDS} shards to trigger scale-up")

            outcome = {}

            def drive():
                outcome["rates"] = analyzer.analyze_sharded(
                    VDD, shards=SHARDS, dispatcher=dispatcher
                )

            run = threading.Thread(target=drive)
            run.start()

            # The backlog signal must grow the pool to max_workers while
            # the run is still in flight.
            await_condition("scale-up to 3", lambda: controller.alive == 3)
            print(f"scaled up: {controller.alive} workers alive, "
                  f"{dispatcher.stats.completed} shard(s) done")

            run.join(timeout=300)
            assert not run.is_alive(), "dispatch did not complete"
            rates = outcome["rates"]

            # Queue empty again: the idle pool scales back toward
            # min_workers before the controller is even stopped.
            await_condition("idle scale-down", lambda: controller.alive == 1)
            print("queue drained; pool back at min_workers=1")
        # Leaving the block stops the controller and drains the pool.
        assert controller.alive == 0, "controller left workers running"

        identical = (
            json.dumps(rates.to_dict(), sort_keys=True)
            == json.dumps(reference.to_dict(), sort_keys=True)
        )
        print(dispatcher.stats.summary())
        actions = [event.action for event in controller.events]
        assert identical, "autoscaled merge differs from monolithic analyze"
        assert dispatcher.stats.completed == SHARDS
        assert controller.spawned_total >= 3, actions
        assert actions.count("spawn") >= 3, actions
        assert controller.crash_restarts == 0, actions
        # The scaled-up workers genuinely served: more than one worker
        # registered and took assignments off the shared queue.
        assert dispatcher.stats.workers_seen >= 2, dispatcher.stats.summary()
        assert len(dispatcher.stats.per_worker) >= 2, (
            dispatcher.stats.per_worker
        )
        print("autoscale smoke OK: byte-identical merge across "
              f"{controller.spawned_total} spawned worker(s), "
              f"scale events: {actions}")
        return 0
    finally:
        controller.stop()
        dispatcher.close()


if __name__ == "__main__":
    sys.exit(main())
