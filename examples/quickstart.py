"""Quickstart: the paper's pipeline end to end, in five steps.

Run with::

    python examples/quickstart.py

Trains a small digit-recognition ANN, characterizes the 6T/8T bitcells,
then compares three synaptic memories at a scaled supply: the all-6T
baseline, the significance-driven hybrid (Config 1) and the paper's
sensitivity-driven allocation (Config 2).
"""

from repro.core import CircuitToSystemSimulator, format_table, train_benchmark_ann
from repro.mem import CellTables

VDD_SCALED = 0.65


def main() -> None:
    # 1. Train (or load from cache) the benchmark network and quantize
    #    its synapses to the 8-bit fixed-point memory image.
    print("training the benchmark ANN (cached after the first run)...")
    model = train_benchmark_ann()
    print(f"  float accuracy      {model.float_accuracy:.4f}")
    print(f"  8-bit accuracy      {model.quantized_accuracy:.4f}")
    print(f"  word format         {model.image.fmt}")

    # 2. Characterize the bitcells across the voltage range (cached).
    print("characterizing 6T/8T bitcells (Monte Carlo, cached)...")
    tables = CellTables.build(n_samples=8000)
    p6 = tables.table_6t.point_at(VDD_SCALED)
    print(f"  6T cell @ {VDD_SCALED} V: P(read-access fail) = "
          f"{p6.p_read_access:.2e}")

    # 3. Wire the two together.
    sim = CircuitToSystemSimulator(model, tables=tables, n_trials=3)

    # 4. Evaluate three memory configurations at the scaled voltage.
    memories = [
        sim.base_memory(VDD_SCALED),
        sim.config1_memory(VDD_SCALED, msb_in_8t=3),
        sim.config2_memory(VDD_SCALED, msb_per_layer=(2, 3, 1, 1, 3)),
    ]

    # 5. Report accuracy + power/area versus the 6T @ 0.75 V baseline.
    rows = []
    for memory in memories:
        evaluation = sim.evaluate(memory, seed=1)
        comparison = sim.compare(memory)
        rows.append(
            [memory.name, 100 * evaluation.mean_accuracy,
             comparison.access_power_reduction_pct,
             comparison.leakage_power_reduction_pct,
             comparison.area_overhead_pct]
        )
    print()
    print(f"memories at {VDD_SCALED} V vs all-6T @ 0.75 V (iso-stability):")
    print(format_table(
        ["memory", "accuracy %", "access-power red. %",
         "leakage red. %", "area overhead %"],
        rows, float_fmt="{:.2f}",
    ))
    print()
    print("The all-6T memory collapses at this voltage; the hybrids keep")
    print("near-nominal accuracy while cutting memory power — the paper's")
    print("central result.")


if __name__ == "__main__":
    main()
