"""Paper-scale sub-array characterization through the sharded Monte Carlo.

Run with::

    python examples/paper_scale_array.py [--jobs N] [--vdd V ...]

The paper anchors its failure analysis to a 256x256 sub-array — 65,536
cells.  This example characterizes that array at *population scale*:
one Monte-Carlo ΔVT sample per physical cell, streamed through the
sharded runtime (:mod:`repro.runtime.sharding`) so that no shard ever
holds more than ``--max-shard-samples`` samples in memory.  Per-shard
tallies land in the shared result cache, which makes the run resumable
and lets ``--jobs`` fan the shards across worker processes.

Because sharding is bit-identical to a monolithic run, the numbers
printed here are exactly what a (much more memory-hungry) single-batch
64k-sample analysis would produce.
"""

import argparse
import time

from repro.devices import ptm22
from repro.runtime import ResultCache, ShardPlan
from repro.sram import SubArray, make_cell
from repro.sram.area import format_area
from repro.units import format_si


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for shard fan-out "
                             "(default: REPRO_JOBS env var, else serial)")
    parser.add_argument("--vdd", type=float, nargs="+",
                        default=[0.65, 0.75, 0.85],
                        help="supply voltages to characterize (V)")
    parser.add_argument("--block-samples", type=int, default=4096,
                        help="samples per seeded block (shard granularity)")
    parser.add_argument("--max-shard-samples", type=int, default=8192,
                        help="per-shard sample ceiling (bounds memory)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute shard tallies instead of caching them")
    args = parser.parse_args()

    cell = make_cell("6t", ptm22())
    array = SubArray(
        cell=cell,
        rows=256,
        cols=256,
        mc_samples=256 * 256,  # one ΔVT sample per physical cell
        block_samples=args.block_samples,
        max_shard_samples=args.max_shard_samples,
        jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(),
    )
    # SubArray streams through the analyzer; show the plan it implies.
    plan = ShardPlan.plan(
        array.mc_samples, block_samples=args.block_samples,
        max_shard_samples=args.max_shard_samples,
    )
    print(f"256x256 sub-array, {array.n_cells} cells, "
          f"{array.mc_samples} MC samples per voltage")
    print(f"shard plan: {plan.n_shards} shards x <= "
          f"{plan.max_samples_per_shard()} samples "
          f"({plan.n_blocks} blocks of {plan.block_samples})")
    print(f"area {format_area(array.area)}, "
          f"read budget {format_si(array.read_cycle_budget(), 's')}\n")

    header = f"{'VDD':>5} {'P(cell fails)':>14} {'E[faulty cells]':>16} {'runtime':>9}"
    print(header)
    print("-" * len(header))
    for vdd in args.vdd:
        t0 = time.time()
        rates = array.failure_rates(vdd)
        dt = time.time() - t0
        print(f"{vdd:5.2f} {rates.p_cell:14.3e} "
              f"{array.expected_faulty_cells(vdd):16.1f} {dt:8.2f}s")

    print("\nPer-mechanism estimates at the lowest voltage:")
    rates = array.failure_rates(min(args.vdd))
    for name, p in sorted(rates.estimate.items()):
        print(f"  {name:<12s} {p:.3e}")
    print("\nShard tallies are cached (namespace 'mcshard') the moment each "
          "shard completes: rerunning this script is instant, and "
          "interrupting it loses only the shards still in flight.")


if __name__ == "__main__":
    main()
