"""Bitcell calibration report: margins, failure rates, power and area.

Run with::

    python examples/calibrate_bitcells.py

Prints everything Section IV of the paper reports about the two cells,
next to the paper's anchor values.  This is the script that was used to
tune the default sizings in ``repro/sram/sizing.py``.
"""

from repro.core import format_table
from repro.devices import ptm22
from repro.sram import (
    MonteCarloAnalyzer,
    area_overhead_8t_vs_6t,
    bitcell_area,
    hold_snm,
    make_cell,
    read_snm,
    write_margin,
)
from repro.sram.power import cell_power, cycle_time
from repro.sram.read_path import nominal_read_cycle
from repro.units import format_si


def main() -> None:
    tech = ptm22()
    cell6 = make_cell("6t", tech)
    cell8 = make_cell("8t", tech)
    vdd = tech.vdd_nominal

    print(f"technology {tech.name}, nominal VDD {vdd} V")
    print()

    rows = [
        ["read SNM (mV)", 1e3 * read_snm(cell6, vdd), 1e3 * read_snm(cell8, vdd),
         "195 (6T anchor)"],
        ["hold SNM (mV)", 1e3 * hold_snm(cell6, vdd), 1e3 * hold_snm(cell8, vdd),
         "-"],
        ["write margin (mV)", 1e3 * write_margin(cell6, vdd),
         1e3 * write_margin(cell8, vdd), "250 (6T anchor)"],
        ["area (um^2)", 1e12 * bitcell_area(cell6), 1e12 * bitcell_area(cell8),
         "8T/6T = 1.37"],
    ]
    print(format_table(["metric", "6T", "8T", "paper"], rows, float_fmt="{:.1f}"))
    print()
    print(f"8T area overhead: {100 * area_overhead_8t_vs_6t(tech):.1f}% "
          "(paper: 37%)")
    print()

    budget = nominal_read_cycle(cell6)
    print(f"shared read budget (6T, guard-banded): {format_si(budget, 's')}")
    mc6 = MonteCarloAnalyzer(cell=cell6, n_samples=10000, read_cycle=budget)
    mc8 = MonteCarloAnalyzer(cell=cell8, n_samples=10000, read_cycle=budget)
    rows = []
    for v in (0.95, 0.85, 0.75, 0.70, 0.65):
        r6 = mc6.analyze(v)
        r8 = mc8.analyze(v)
        cyc = cycle_time(cell6, v)
        p6 = cell_power(cell6, v)
        p8 = cell_power(cell8, v, cycle_time_override=cyc)
        rows.append(
            [v, f"{r6.p_read_access:.2e}", f"{r6.p_write:.2e}",
             f"{r8.p_cell:.2e}",
             f"{p8.read_power / p6.read_power:.2f}",
             f"{p8.leakage_power / p6.leakage_power:.2f}"]
        )
    print(format_table(
        ["VDD", "6T P(read acc)", "6T P(write)", "8T P(any)",
         "8T/6T read pwr", "8T/6T leak"],
        rows,
    ))
    print()
    print("Expected shape: 6T read-access failures dominate and explode at")
    print("scaled voltage; the 8T cell stays clean; iso-voltage overheads sit")
    print("near the paper's +20% (read) and +47% (leakage).")


if __name__ == "__main__":
    main()
