"""Distributed-dispatch smoke: 2 real workers, one killed mid-run.

This is the end-to-end acceptance script of the distributed subsystem
(CI runs it on every push):

1. start a :class:`~repro.distributed.ShardDispatcher` on localhost,
2. spawn two genuine worker *subprocesses* via the CLI
   (``repro-sram worker --connect ...``) sharing one cache store,
3. dispatch an 8-shard Monte-Carlo voltage point to the fleet,
4. ``SIGKILL`` one worker as soon as it holds a shard assignment,
5. assert the merged result is **byte-identical** to the monolithic
   single-host ``analyze`` answer, and that the dispatcher recorded the
   death and the reassignment.

With ``--metrics-port`` the dispatcher's registry is scraped over HTTP
mid-run and the required ``repro_dispatch_*`` series are asserted
non-zero (the CI ``obs-smoke`` job's check).  With ``--trace-out`` the
run executes under a deterministic tracer and exports a Chrome
trace-event file loadable in Perfetto.

Run it directly::

    PYTHONPATH=src python examples/distributed_smoke.py
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

from repro.devices import ptm22
from repro.distributed import DirectoryStore, ShardDispatcher
from repro.obs import MetricsServer, Tracer
from repro.sram import make_cell
from repro.sram.montecarlo import MonteCarloAnalyzer

SAMPLES = int(os.environ.get("SMOKE_SAMPLES", "12000"))
SHARDS = 8
VDD = 0.70

#: Series the mid-run scrape must report with a non-zero value.
REQUIRED_SERIES = (
    "repro_dispatch_jobs_total",
    "repro_dispatch_assignments_total",
    "repro_dispatch_active_workers",
)


def spawn_worker(host, port, store_dir, name):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", f"{host}:{port}", "--cache-dir", store_dir,
         "--name", name],
        env=os.environ.copy(),
    )


def scrape_metrics(url):
    """Fetch ``/metrics`` and return ``{series-with-labels: value}``."""
    with urllib.request.urlopen(url, timeout=10) as response:
        text = response.read().decode()
    values = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        values[name] = float(value)
    return values


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="scrape /metrics mid-run on this port "
                             "(0 = ephemeral) and assert the required "
                             "series are non-zero")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="export a Chrome trace-event file of the "
                             "whole run (Perfetto-loadable)")
    args = parser.parse_args(argv)

    analyzer = MonteCarloAnalyzer(
        cell=make_cell("6t", ptm22()),
        n_samples=SAMPLES,
        block_samples=max(1, SAMPLES // SHARDS),
    )
    print(f"monolithic reference: {SAMPLES} samples at {VDD} V ...")
    reference = analyzer.analyze(VDD)

    tracer = None
    if args.trace_out is not None:
        tracer = Tracer(enabled=True, deterministic=True)

    store_dir = tempfile.mkdtemp(prefix="repro-dist-smoke-")
    dispatcher = ShardDispatcher(
        store=DirectoryStore(store_dir),
        heartbeat_interval=0.2,
        heartbeat_timeout=1.0,
        tracer=tracer,
    )
    metrics_server = None
    if args.metrics_port is not None:
        metrics_server = MetricsServer(
            dispatcher.metrics, port=args.metrics_port
        ).start()
        print(f"metrics on {metrics_server.url}")
    host, port = dispatcher.start()
    print(f"dispatcher on {host}:{port}, store {store_dir}")

    victim = spawn_worker(host, port, store_dir, "victim")
    survivor = spawn_worker(host, port, store_dir, "survivor")
    try:
        dispatcher.await_workers(2, timeout=120)
        print("2 workers registered; dispatching "
              f"{SHARDS} shards, killing 'victim' mid-run")

        outcome = {}

        def drive():
            outcome["rates"] = analyzer.analyze_sharded(
                VDD, shards=SHARDS, dispatcher=dispatcher
            )

        # Daemonize so a failed assertion below cannot hang the process
        # on a dispatch that will never finish once workers are gone.
        run = threading.Thread(target=drive, daemon=True)
        run.start()

        # SIGKILL the victim the moment it holds a shard assignment.
        deadline = time.monotonic() + 120
        while (dispatcher.stats.per_worker.get("victim", 0) == 0
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert dispatcher.stats.per_worker.get("victim", 0) > 0, (
            "victim never received an assignment"
        )
        if metrics_server is not None:
            # Scrape mid-run, while assignments are in flight: the
            # registry must already report live fleet state.
            scraped = scrape_metrics(metrics_server.url)
            for series in REQUIRED_SERIES:
                value = scraped.get(series, 0.0)
                assert value > 0, (
                    f"mid-run scrape: {series} missing or zero "
                    f"(got {value!r})"
                )
            print(f"mid-run /metrics scrape OK "
                  f"({len(scraped)} series, required ones non-zero)")
        victim.kill()
        victim.wait(timeout=30)
        print("victim killed (SIGKILL) after "
              f"{dispatcher.stats.per_worker['victim']} assignment(s)")

        run.join(timeout=300)
        assert not run.is_alive(), "dispatch did not complete"
        rates = outcome["rates"]

        identical = (
            json.dumps(rates.to_dict(), sort_keys=True)
            == json.dumps(reference.to_dict(), sort_keys=True)
        )
        print(dispatcher.stats.summary())
        assert identical, "distributed merge differs from monolithic analyze"
        assert dispatcher.stats.workers_lost >= 1, "worker death not recorded"
        assert dispatcher.stats.completed == SHARDS
        flight_kinds = [e["kind"] for e in dispatcher.flight.snapshot()]
        assert "worker_join" in flight_kinds, "worker joins not recorded"
        assert "worker_death" in flight_kinds, "worker death not in flight log"
        if tracer is not None:
            count = tracer.write_chrome_trace(args.trace_out)
            print(f"chrome trace: {count} event(s) -> {args.trace_out}")
        print("distributed smoke OK: byte-identical merge after "
              f"{dispatcher.stats.retries} reassignment(s)")
        return 0
    finally:
        survivor.terminate()
        survivor.wait(timeout=30)
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=30)
        dispatcher.close()
        if metrics_server is not None:
            metrics_server.stop()


if __name__ == "__main__":
    sys.exit(main())
