"""Distributed-dispatch smoke: 2 real workers, one killed mid-run.

This is the end-to-end acceptance script of the distributed subsystem
(CI runs it on every push):

1. start a :class:`~repro.distributed.ShardDispatcher` on localhost,
2. spawn two genuine worker *subprocesses* via the CLI
   (``repro-sram worker --connect ...``) sharing one cache store,
3. dispatch an 8-shard Monte-Carlo voltage point to the fleet,
4. ``SIGKILL`` one worker as soon as it holds a shard assignment,
5. assert the merged result is **byte-identical** to the monolithic
   single-host ``analyze`` answer, and that the dispatcher recorded the
   death and the reassignment.

Run it directly::

    PYTHONPATH=src python examples/distributed_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile
import threading
import time

from repro.devices import ptm22
from repro.distributed import DirectoryStore, ShardDispatcher
from repro.sram import make_cell
from repro.sram.montecarlo import MonteCarloAnalyzer

SAMPLES = int(os.environ.get("SMOKE_SAMPLES", "12000"))
SHARDS = 8
VDD = 0.70


def spawn_worker(host, port, store_dir, name):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", f"{host}:{port}", "--cache-dir", store_dir,
         "--name", name],
        env=os.environ.copy(),
    )


def main() -> int:
    analyzer = MonteCarloAnalyzer(
        cell=make_cell("6t", ptm22()),
        n_samples=SAMPLES,
        block_samples=max(1, SAMPLES // SHARDS),
    )
    print(f"monolithic reference: {SAMPLES} samples at {VDD} V ...")
    reference = analyzer.analyze(VDD)

    store_dir = tempfile.mkdtemp(prefix="repro-dist-smoke-")
    dispatcher = ShardDispatcher(
        store=DirectoryStore(store_dir),
        heartbeat_interval=0.2,
        heartbeat_timeout=1.0,
    )
    host, port = dispatcher.start()
    print(f"dispatcher on {host}:{port}, store {store_dir}")

    victim = spawn_worker(host, port, store_dir, "victim")
    survivor = spawn_worker(host, port, store_dir, "survivor")
    try:
        dispatcher.await_workers(2, timeout=120)
        print("2 workers registered; dispatching "
              f"{SHARDS} shards, killing 'victim' mid-run")

        outcome = {}

        def drive():
            outcome["rates"] = analyzer.analyze_sharded(
                VDD, shards=SHARDS, dispatcher=dispatcher
            )

        run = threading.Thread(target=drive)
        run.start()

        # SIGKILL the victim the moment it holds a shard assignment.
        deadline = time.monotonic() + 120
        while (dispatcher.stats.per_worker.get("victim", 0) == 0
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert dispatcher.stats.per_worker.get("victim", 0) > 0, (
            "victim never received an assignment"
        )
        victim.kill()
        victim.wait(timeout=30)
        print("victim killed (SIGKILL) after "
              f"{dispatcher.stats.per_worker['victim']} assignment(s)")

        run.join(timeout=300)
        assert not run.is_alive(), "dispatch did not complete"
        rates = outcome["rates"]

        identical = (
            json.dumps(rates.to_dict(), sort_keys=True)
            == json.dumps(reference.to_dict(), sort_keys=True)
        )
        print(dispatcher.stats.summary())
        assert identical, "distributed merge differs from monolithic analyze"
        assert dispatcher.stats.workers_lost >= 1, "worker death not recorded"
        assert dispatcher.stats.completed == SHARDS
        print("distributed smoke OK: byte-identical merge after "
              f"{dispatcher.stats.retries} reassignment(s)")
        return 0
    finally:
        survivor.terminate()
        survivor.wait(timeout=30)
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=30)
        dispatcher.close()


if __name__ == "__main__":
    sys.exit(main())
